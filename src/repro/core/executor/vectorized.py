"""Vectorized batch executor — the middle execution tier.

The paper's §5 identifies per-tuple interpretation as the dominant overhead of
static engines, and removes it by collapsing each plan into a specialized
program.  The Volcano interpreter exists as the ablation baseline for that
claim, but it also serves every query shape the code generator does not cover
— so those shapes, and every ablation with code generation disabled, pay the
exact overhead the paper measures.

This executor closes that gap without generating code: it interprets the same
physical plans, but over NumPy columnar *batches* (default 4096 rows) instead
of per-tuple dict environments.  The plan is first lowered by
:class:`PipelineCompiler` into a :class:`CompiledPipeline` — one
:class:`ScanOperator` batch source plus a list of per-batch stages:

* :class:`SelectStage` evaluates the predicate once per batch into a boolean
  mask,
* :class:`HashJoinStage` holds the materialized build side and one radix
  table and probes it batch-at-a-time,
* :class:`UnnestStage` flattens nested collections batch-natively through the
  plug-in's ``scan_unnest_batch`` offset-vector API (one ``np.repeat``
  broadcast of the parent columns per batch; outer unnest emits null child
  rows for empty collections, and nested-in-nested flattens materialized
  collection columns in memory),
* grouping concatenates key/argument columns and reduces them with the radix
  grouping kernel (``np.unique`` + segmented reductions).

The stages are deliberately *stateless per batch* (all mutable state lives in
the per-call :class:`PipelineCounters`), so the same pipeline object can be
executed over any batch range by any worker — this is what the morsel-driven
parallel tier (:mod:`repro.core.parallel`) builds on: it compiles one
pipeline, splits the driving scan into morsels and runs the pipeline
concurrently over them.

The scan operator also consults the adaptive :class:`CacheManager` the way
the generated tier does: cached field columns are served (and counted as
cache hits) instead of re-converting raw bytes, and fully-scanned columns are
admitted to the cache as a side effect of execution (§6).

Interpretation decisions still happen at run time (unlike the generated
tier), but once per *batch* rather than once per tuple — the classic
vectorized-execution trade-off.

Null semantics mirror the Volcano interpreter: comparisons with a missing
value are false, arithmetic over a missing value is missing and aggregates
skip missing inputs.  In columnar buffers "missing" is ``None`` inside object
columns or NaN inside float columns (the JSON plug-in's encoding of absent
numeric fields).

Shapes this tier does not cover (record construction in output columns, outer
joins, grouping on keys containing nulls, group-by output columns that are
neither keys nor aggregates) raise :class:`VectorizationError`, and the
engine falls back to the Volcano interpreter.  Unnests — inner and outer —
are covered batch-natively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from repro.caching.matching import field_cache_key
from repro.core.analysis.model import EMPTY_HINTS, NullabilityHints
from repro.core.concurrency import make_lock
from repro.core.aggregate_utils import (
    AggregateAccumulators,
    literal_results,
    replace_aggregates,
    unique_output_columns,
)
from repro.core.executor import radix
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    FieldRef,
    IfThenElse,
    Literal,
    Parameter,
    UnaryOp,
    contains_aggregate,
    iter_aggregates,
    parameter_env,
)
from repro.core.physical import (
    PhysHashJoin,
    PhysNest,
    PhysNestedLoopJoin,
    PhysReduce,
    PhysScan,
    PhysSelect,
    PhysSort,
    PhysUnnest,
    PhysicalPlan,
)
from repro.core.sort import (
    STRATEGY_TOPK,
    TopKAccumulator,
    concat_chunks,
    resolve_limit,
    sort_columns,
)
from repro.core.types import python_value as _python_value
from repro.errors import ExecutionError, PluginError, VectorizationError
from repro.obs.instrument import traced_scan, traced_stage
from repro.obs.trace import TraceBuilder
from repro.plugins.base import FieldPath, InputPlugin, flatten_collections
from repro.storage.catalog import Catalog, Dataset

DEFAULT_BATCH_SIZE = 4096

#: Synthetic binding under which computed per-group aggregate results are
#: exposed when finishing group-by output columns (mirrors the codegen tier).
_AGG_BINDING = "__agg__"

#: Virtual-buffer key: (binding, field path).
ColumnKey = tuple[str, tuple[str, ...]]


@dataclass
class Batch:
    """One columnar batch flowing between operators."""

    count: int
    columns: dict[ColumnKey, np.ndarray] = field(default_factory=dict)
    #: Per-binding global row positions (for lazy access and unnesting).
    oids: dict[str, np.ndarray] = field(default_factory=dict)
    #: Bound query-parameter values (``Parameter`` nodes evaluate against
    #: this); shared by every batch of one execution, never copied.
    params: Mapping[int | str, object] | None = None

    def take(self, selector: np.ndarray) -> "Batch":
        """Gather rows by boolean mask or integer positions."""
        taken = Batch(count=0, params=self.params)
        for key, column in self.columns.items():
            taken.columns[key] = column[selector]
        for binding, oids in self.oids.items():
            taken.oids[binding] = oids[selector]
        if selector.dtype == np.bool_:
            taken.count = int(selector.sum())
        else:
            taken.count = len(selector)
        return taken


# ---------------------------------------------------------------------------
# Vectorized expression evaluation
# ---------------------------------------------------------------------------

_COMPARISONS = frozenset(("=", "!=", "<", "<=", ">", ">="))

def _is_object_array(value: Any) -> bool:
    return isinstance(value, np.ndarray) and value.dtype == object


def materialize(value: Any, count: int) -> np.ndarray:
    """Broadcast an evaluation result to a full column of ``count`` rows."""
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value
    if isinstance(value, np.ndarray):  # 0-d array
        value = value.item()
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, (bool, int, float)):
        return np.full(count, value)
    column = np.empty(count, dtype=object)
    column[:] = [value] * count
    return column


def as_bool_array(value: Any, count: int) -> np.ndarray:
    """Coerce an evaluation result to a boolean mask of ``count`` rows.
    Missing values are false (see :func:`radix.bool_mask`)."""
    return radix.bool_mask(materialize(value, count))


def evaluate_batch(expression: Expression, batch: Batch) -> Any:
    """Evaluate an expression over a batch; returns a column or a scalar."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, Parameter):
        params = batch.params
        if params is None or expression.key not in params:
            raise ExecutionError(
                f"query parameter {expression.display} is not bound"
            )
        return params[expression.key]
    if isinstance(expression, FieldRef):
        key = (expression.binding, tuple(expression.path))
        column = batch.columns.get(key)
        if column is None:
            raise VectorizationError(
                f"no batch column holds {expression!r}; available: "
                f"{sorted(batch.columns)}"
            )
        return column
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, batch)
    if isinstance(expression, UnaryOp):
        value = evaluate_batch(expression.operand, batch)
        if expression.op == "not":
            return ~as_bool_array(value, batch.count)
        return radix.null_safe_neg(value)
    if isinstance(expression, IfThenElse):
        condition = as_bool_array(evaluate_batch(expression.condition, batch), batch.count)
        then = materialize(evaluate_batch(expression.then, batch), batch.count)
        otherwise = materialize(evaluate_batch(expression.otherwise, batch), batch.count)
        return np.where(condition, then, otherwise)
    if isinstance(expression, AggregateCall):
        raise VectorizationError(
            "aggregate calls are evaluated by the Reduce/Nest batch operators"
        )
    raise VectorizationError(
        f"the vectorized executor cannot evaluate expression {expression!r}"
    )


def _evaluate_binary(expression: BinaryOp, batch: Batch) -> Any:
    if expression.op == "and":
        left = as_bool_array(evaluate_batch(expression.left, batch), batch.count)
        right = as_bool_array(evaluate_batch(expression.right, batch), batch.count)
        return left & right
    if expression.op == "or":
        left = as_bool_array(evaluate_batch(expression.left, batch), batch.count)
        right = as_bool_array(evaluate_batch(expression.right, batch), batch.count)
        return left | right
    left = evaluate_batch(expression.left, batch)
    right = evaluate_batch(expression.right, batch)
    if expression.op in _COMPARISONS:
        return radix.null_safe_compare(expression.op, left, right)
    return radix.null_safe_arith(expression.op, left, right)


def _valid_mask(values: np.ndarray) -> np.ndarray | None:
    """Mask of non-missing entries, or ``None`` when everything is valid."""
    mask = radix.missing_mask(values)
    return None if mask is None else ~mask


def _apply_predicate(batch: Batch, predicate: Expression) -> Batch | None:
    """Filter a batch by a predicate; ``None`` when nothing survives."""
    mask = as_bool_array(evaluate_batch(predicate, batch), batch.count)
    if not mask.any():
        return None
    if mask.all():
        return batch
    return batch.take(mask)


def _gather_joined(
    left: Batch, right: Batch, left_positions: np.ndarray, right_positions: np.ndarray
) -> Batch:
    """Assemble a join output batch by gathering both sides."""
    joined = Batch(
        count=len(left_positions),
        params=right.params if right.params is not None else left.params,
    )
    for key, column in left.columns.items():
        joined.columns[key] = column[left_positions]
    for binding, oids in left.oids.items():
        joined.oids[binding] = oids[left_positions]
    for key, column in right.columns.items():
        joined.columns[key] = column[right_positions]
    for binding, oids in right.oids.items():
        joined.oids[binding] = oids[right_positions]
    return joined


def concat_batches(batches: list[Batch]) -> Batch:
    """Concatenate a list of batches into one (join build sides)."""
    if not batches:
        return Batch(count=0)
    if len(batches) == 1:
        return batches[0]
    merged = Batch(
        count=sum(batch.count for batch in batches), params=batches[0].params
    )
    for key in batches[0].columns:
        merged.columns[key] = np.concatenate(
            [batch.columns[key] for batch in batches]
        )
    for binding in batches[0].oids:
        merged.oids[binding] = np.concatenate(
            [batch.oids[binding] for batch in batches]
        )
    return merged


# ---------------------------------------------------------------------------
# Pipeline counters
# ---------------------------------------------------------------------------


@dataclass
class PipelineCounters:
    """Execution counters produced while running a pipeline.

    Every stage writes into the counters object it is *passed* rather than
    into shared executor state, so concurrent workers can run the same
    pipeline with independent counters and merge them afterwards.
    """

    rows_scanned: int = 0
    batches_processed: int = 0
    values_extracted: int = 0
    values_from_cache: int = 0
    join_build_rows: int = 0
    join_output_rows: int = 0
    groups_built: int = 0
    output_rows: int = 0
    rows_sorted: int = 0
    unnest_output_rows: int = 0

    def merge(self, other: "PipelineCounters") -> None:
        self.rows_scanned += other.rows_scanned
        self.batches_processed += other.batches_processed
        self.values_extracted += other.values_extracted
        self.values_from_cache += other.values_from_cache
        self.join_build_rows += other.join_build_rows
        self.join_output_rows += other.join_output_rows
        self.groups_built += other.groups_built
        self.output_rows += other.output_rows
        self.rows_sorted += other.rows_sorted
        self.unnest_output_rows += other.unnest_output_rows


# ---------------------------------------------------------------------------
# Scan operator (the batch source of every pipeline)
# ---------------------------------------------------------------------------


class ScanOperator:
    """Produces the batch stream of one :class:`PhysScan`.

    The operator consults the adaptive cache the way the generated tier's
    ``rt.scan`` does: field columns held by the caching manager are served
    (and counted as hits) instead of re-extracted, remaining fields are
    scanned through the plug-in, and columns extracted by a *complete* scan
    are admitted to the cache afterwards (:meth:`store_materialized`).

    Batch production is side-effect-free apart from the counters argument and
    the (lock-guarded) materialization recorder, so multiple workers may pull
    disjoint row ranges concurrently via :meth:`iter_range`.
    """

    def __init__(
        self,
        plan: PhysScan,
        dataset: Dataset,
        plugin: InputPlugin,
        cache_manager=None,
        params: Mapping[int | str, object] | None = None,
        context=None,
    ):
        self.plan = plan
        self.binding = plan.binding
        self.dataset = dataset
        self.plugin = plugin
        self.cache_manager = cache_manager
        self.params = params
        #: Per-query resilience context; checked once per produced batch.
        self.context = context
        self.paths = [tuple(path) for path in plan.paths]
        self._cached: dict[FieldPath, np.ndarray] = {}
        if cache_manager is not None and plugin.format_name != "cache":
            for path in self.paths:
                entry = cache_manager.lookup(field_cache_key(dataset.name, path))
                if entry is not None:
                    self._cached[path] = entry.data
        self._uncached = [path for path in self.paths if path not in self._cached]
        if self._cached and not self._uncached:
            self.total_rows: int | None = len(next(iter(self._cached.values())))
        else:
            self.total_rows = plugin.scan_row_count(dataset)
        # Chunk recorder for cache materialization: worth the references only
        # when the manager could admit at least one column of this format.
        self._record: dict[FieldPath, dict[int, np.ndarray]] = {}
        self._record_lock = make_lock("ScanOperator._record_lock")
        if (
            cache_manager is not None
            and plugin.format_name != "cache"
            and self._uncached
            and self.total_rows is not None
            and (
                cache_manager.policy.should_cache_field(plugin.format_name, "float")
                or cache_manager.policy.should_cache_field(plugin.format_name, "string")
            )
        ):
            self._record = {path: {} for path in self._uncached}

    @property
    def fully_cached(self) -> bool:
        return bool(self._cached) and not self._uncached

    @property
    def splittable(self) -> bool:
        """Can this scan serve arbitrary row ranges (morsel-driven access)?"""
        if self.fully_cached:
            return True
        return self.total_rows is not None and self.plugin.supports_scan_ranges

    def iter_batches(
        self, counters: PipelineCounters, batch_size: int
    ) -> Iterator[Batch]:
        """The full batch stream (serial execution)."""
        if self.fully_cached:
            yield from self._iter_cached(0, self.total_rows, counters, batch_size)
            return
        for buffers in self._metered(
            self.plugin.scan_batches(
                self.dataset, self._uncached, batch_size=batch_size
            )
        ):
            batch = self._to_batch(buffers, counters)
            if batch is not None:
                if self.context is not None:
                    self.context.note_batch(batch.count)
                yield batch

    def iter_range(
        self, start: int, stop: int, counters: PipelineCounters, batch_size: int
    ) -> Iterator[Batch]:
        """The batch stream of global rows ``[start, stop)`` (one morsel)."""
        if self.fully_cached:
            yield from self._iter_cached(start, stop, counters, batch_size)
            return
        for buffers in self._metered(
            self.plugin.scan_batch_ranges(
                self.dataset, self._uncached, start, stop, batch_size=batch_size
            )
        ):
            batch = self._to_batch(buffers, counters)
            if batch is not None:
                if self.context is not None:
                    self.context.note_batch(batch.count)
                yield batch

    def _metered(self, stream):
        """Charge the time spent inside the plug-in's stream — the raw-data
        parse cost — and the produced bytes to the plug-in's scan metrics.
        One flush per stream keeps the accounting off the per-batch path."""
        seconds = 0.0
        nbytes = 0
        try:
            while True:
                started = time.perf_counter()
                try:
                    buffers = next(stream)
                except StopIteration:
                    seconds += time.perf_counter() - started
                    return
                seconds += time.perf_counter() - started
                for column in buffers.columns.values():
                    nbytes += getattr(column, "nbytes", 0)
                yield buffers
        finally:
            self.plugin.record_scan(seconds, nbytes)

    def _iter_cached(
        self, start: int, stop: int, counters: PipelineCounters, batch_size: int
    ) -> Iterator[Batch]:
        for begin in range(start, stop, batch_size):
            end = min(begin + batch_size, stop)
            batch = Batch(count=end - begin, params=self.params)
            batch.oids[self.binding] = np.arange(begin, end, dtype=np.int64)
            for path, full in self._cached.items():
                batch.columns[(self.binding, path)] = full[begin:end]
            counters.values_from_cache += (end - begin) * len(self._cached)
            counters.batches_processed += 1
            if self.context is not None:
                self.context.note_batch(batch.count)
            yield batch

    def _to_batch(self, buffers, counters: PipelineCounters) -> Batch | None:
        if buffers.count == 0:
            return None
        batch = Batch(count=buffers.count, params=self.params)
        oids = np.asarray(buffers.oids, dtype=np.int64)
        batch.oids[self.binding] = oids
        start = int(oids[0]) if len(oids) else 0
        contiguous = len(oids) == 0 or int(oids[-1]) - start == buffers.count - 1
        for path in self._uncached:
            column = buffers.column(path)
            batch.columns[(self.binding, path)] = column
            if path in self._record and contiguous:
                with self._record_lock:
                    self._record[path][start] = column
        if self._cached:
            for path, full in self._cached.items():
                batch.columns[(self.binding, path)] = full[oids]
            counters.values_from_cache += buffers.count * len(self._cached)
        counters.rows_scanned += buffers.count
        counters.values_extracted += buffers.count * len(self._uncached)
        counters.batches_processed += 1
        return batch

    def store_materialized(self) -> None:
        """Admit columns covered by a complete scan to the adaptive cache.

        Called on the main thread after execution finished; chunks that do not
        cover the dataset contiguously (an abandoned stream, a failed morsel)
        are silently dropped — caching is best-effort.
        """
        manager = self.cache_manager
        if manager is None or not self._record:
            return
        with self._record_lock:
            record, self._record = self._record, {}
        for path, chunks in record.items():
            if not chunks:
                continue
            starts = sorted(chunks)
            covered = 0
            for start in starts:
                if start != covered:
                    covered = -1
                    break
                covered += len(chunks[start])
            if covered != self.total_rows:
                continue
            column = (
                chunks[starts[0]]
                if len(starts) == 1
                else np.concatenate([chunks[start] for start in starts])
            )
            if not manager.policy.should_cache_field(
                self.plugin.format_name, _cache_type_name(column)
            ):
                continue
            manager.store(
                field_cache_key(self.dataset.name, path),
                column,
                kind="field",
                dataset=self.dataset.name,
                source_format=self.plugin.format_name,
                description=f"{self.dataset.name}.{'.'.join(path)}",
            )


def _cache_type_name(column: np.ndarray) -> str:
    """Type label a column gets for the cache-admission policy (mirrors the
    generated tier's classification)."""
    if column.dtype == object:
        return "string"
    if column.dtype.kind == "b":
        return "bool"
    if column.dtype.kind in "iu":
        return "int"
    return "float"


# ---------------------------------------------------------------------------
# Per-batch pipeline stages
# ---------------------------------------------------------------------------


class SelectStage:
    """Filter each batch by a predicate."""

    def __init__(self, predicate: Expression):
        self.predicate = predicate

    def apply(self, batch: Batch, counters: PipelineCounters) -> Batch | None:
        return _apply_predicate(batch, self.predicate)


class UnnestStage:
    """Flatten a nested collection of the parent binding into each batch.

    Batch-native: the plug-in's ``scan_unnest_batch`` returns flattened
    element buffers plus one repeat count per parent, and the parent columns
    are broadcast with a single ``np.repeat`` per batch — no per-parent
    round-trips.  Two source modes:

    * **scan-backed** (``plugin`` is set) — the parent binding's OIDs address
      the raw source directly; the plug-in flattens with its native
      offset-vector implementation (or the generic per-parent fallback).
    * **column-backed** (``plugin`` is ``None``) — the parent binding is
      itself an unnest variable (nested-in-nested); the collection was
      materialized as an object column by the parent stage and is flattened
      in memory by :func:`repro.plugins.base.flatten_collections`.

    Outer unnest emits one null child row for parents whose collection is
    empty or missing, matching the Volcano interpreter.  An outer unnest
    carrying a pushed-down element predicate is not vectorized (the planner
    never produces that shape; hand-built plans fall back to Volcano).
    """

    def __init__(
        self,
        plan: PhysUnnest,
        dataset: Dataset | None,
        plugin: InputPlugin | None,
    ):
        self.binding = plan.binding
        self.path = plan.path
        self.var = plan.var
        self.element_paths = [tuple(path) for path in plan.element_paths]
        self.predicate = plan.predicate
        self.outer = plan.outer
        self.dataset = dataset
        self.plugin = plugin
        if self.outer and self.predicate is not None:
            raise VectorizationError(
                "outer unnest with an element predicate is served by the "
                "Volcano interpreter"
            )

    def apply(self, batch: Batch, counters: PipelineCounters) -> Batch | None:
        try:
            if self.plugin is not None:
                parent_oids = batch.oids.get(self.binding)
                if parent_oids is None:
                    raise VectorizationError(
                        f"no OID column for unnest binding {self.binding!r}"
                    )
                started = time.perf_counter()
                buffers = self.plugin.scan_unnest_batch(
                    self.dataset,
                    self.path,
                    self.element_paths,
                    parent_oids,
                    outer=self.outer,
                )
                self.plugin.record_scan(
                    time.perf_counter() - started,
                    sum(
                        getattr(column, "nbytes", 0)
                        for column in buffers.columns.values()
                    ),
                )
            else:
                collection = batch.columns.get((self.binding, self.path))
                if collection is None:
                    raise VectorizationError(
                        f"no materialized collection column for "
                        f"{self.binding!r}.{'.'.join(self.path)}"
                    )
                buffers = flatten_collections(
                    collection, self.element_paths, outer=self.outer
                )
        except PluginError as exc:
            raise VectorizationError(str(exc)) from exc
        if buffers.count == 0:
            return None
        flattened = batch.take(buffers.parent_positions())
        for path in self.element_paths:
            flattened.columns[(self.var, path)] = buffers.column(path)
        counters.rows_scanned += buffers.count
        counters.unnest_output_rows += buffers.count
        if self.predicate is not None:
            return _apply_predicate(flattened, self.predicate)
        return flattened


class HashJoinStage:
    """Probe an already-built radix table with each batch.

    The build side (a materialized :class:`Batch` plus its radix table) is
    immutable once constructed, so any number of workers can probe it
    concurrently.
    """

    def __init__(
        self,
        build: Batch,
        table: radix.RadixTable,
        build_kind: str,
        right_key: Expression,
        residual: Expression | None,
    ):
        self.build = build
        self.table = table
        self.build_kind = build_kind
        self.right_key = right_key
        self.residual = residual

    def apply(self, batch: Batch, counters: PipelineCounters) -> Batch | None:
        right_keys = _join_keys(evaluate_batch(self.right_key, batch), batch.count)
        probe_keys, kept = _align_probe_keys(self.build_kind, right_keys)
        left_positions, right_positions = radix.probe_radix_table(
            self.table, probe_keys
        )
        if len(left_positions) == 0:
            return None
        if kept is not None:
            right_positions = kept[right_positions]
        counters.join_output_rows += len(left_positions)
        joined = _gather_joined(self.build, batch, left_positions, right_positions)
        if self.residual is not None:
            return _apply_predicate(joined, self.residual)
        return joined


class NestedLoopJoinStage:
    """Cross-product each batch against a materialized build side."""

    def __init__(self, build: Batch, predicate: Expression | None):
        self.build = build
        self.predicate = predicate

    def apply(self, batch: Batch, counters: PipelineCounters) -> Batch | None:
        left = self.build
        left_positions = np.repeat(
            np.arange(left.count, dtype=np.int64), batch.count
        )
        right_positions = np.tile(
            np.arange(batch.count, dtype=np.int64), left.count
        )
        joined = _gather_joined(left, batch, left_positions, right_positions)
        if self.predicate is not None:
            return _apply_predicate(joined, self.predicate)
        return joined


@dataclass
class CompiledPipeline:
    """One scan source plus the per-batch stages applied to its stream.

    ``always_empty`` marks pipelines that provably produce nothing (an inner
    join whose build side materialized to zero rows); callers skip scanning
    entirely, exactly as the pre-pipeline executor did.
    """

    source: ScanOperator
    stages: list
    always_empty: bool = False
    #: Per-query resilience context, checked once per processed batch so a
    #: deadline/cancellation interrupts between stages of the pipeline.
    context: "object | None" = None

    def process(self, batch: Batch, counters: PipelineCounters) -> Batch | None:
        if self.context is not None:
            self.context.check()
        for stage in self.stages:
            batch = stage.apply(batch, counters)
            if batch is None:
                return None
        return batch


def serial_materialize(
    pipeline: CompiledPipeline, compiler: "PipelineCompiler"
) -> Batch:
    """Run a pipeline to completion on the calling thread and concatenate."""
    if pipeline.always_empty:
        return Batch(count=0)
    collected: list[Batch] = []
    for batch in pipeline.source.iter_batches(compiler.counters, compiler.batch_size):
        out = pipeline.process(batch, compiler.counters)
        if out is not None:
            collected.append(out)
    return concat_batches(collected)


class PipelineCompiler:
    """Lower a physical plan subtree into a :class:`CompiledPipeline`.

    Join build sides are materialized *during* compilation (they are blocking
    operators), through the injected ``materializer`` — the serial executor
    runs them inline, the parallel executor fans their scans across the
    worker pool and builds the radix table partition-parallel via
    ``table_builder``.
    """

    def __init__(
        self,
        catalog: Catalog,
        plugins: Mapping[str, InputPlugin],
        batch_size: int,
        cache_manager=None,
        counters: PipelineCounters | None = None,
        materializer: Callable[[CompiledPipeline, "PipelineCompiler"], Batch] | None = None,
        table_builder: Callable[[np.ndarray], radix.RadixTable] | None = None,
        params: Mapping[int | str, object] | None = None,
        trace: TraceBuilder | None = None,
        context=None,
    ):
        self.catalog = catalog
        self.plugins = plugins
        self.batch_size = max(int(batch_size), 1)
        self.cache_manager = cache_manager
        self.counters = counters if counters is not None else PipelineCounters()
        self.materializer = materializer or serial_materialize
        self.table_builder = table_builder or radix.build_radix_table
        #: Bound query-parameter values, attached to every scan batch.
        self.params = params
        #: Per-query resilience context, handed to every scan operator and
        #: compiled pipeline so batch production observes deadline/cancel.
        self.context = context
        #: Span trace of the current execution; ``None`` (the default) keeps
        #: every compiled stage unwrapped — tracing costs nothing when off.
        self.trace = trace
        #: Every scan operator created while compiling (driving scan and all
        #: build-side scans) — the executor flushes their cache
        #: materializations after a successful run.
        self.scan_operators: list[ScanOperator] = []

    def compile(self, plan: PhysicalPlan) -> CompiledPipeline:
        if isinstance(plan, PhysScan):
            return CompiledPipeline(
                traced_scan(self.trace, plan, self._scan_operator(plan)),
                [],
                context=self.context,
            )
        if isinstance(plan, PhysSelect):
            pipeline = self.compile(plan.child)
            pipeline.stages.append(
                traced_stage(self.trace, plan, SelectStage(plan.predicate))
            )
            return pipeline
        if isinstance(plan, PhysUnnest):
            try:
                dataset, plugin = self._scan_source(plan, plan.binding)
            except VectorizationError:
                # The parent binding is itself an unnest variable
                # (nested-in-nested): the collection travels as a
                # materialized object column instead of plug-in OIDs.
                dataset = plugin = None
            pipeline = self.compile(plan.child)
            pipeline.stages.append(
                traced_stage(self.trace, plan, UnnestStage(plan, dataset, plugin))
            )
            return pipeline
        if isinstance(plan, PhysHashJoin):
            if plan.outer:
                raise VectorizationError(
                    "outer join is served by the Volcano interpreter"
                )
            left = self.materializer(self.compile(plan.left), self)
            pipeline = self.compile(plan.right)
            if left.count == 0 or pipeline.always_empty:
                # An inner join with an empty build side produces nothing;
                # bail out before key evaluation (an empty Batch has no
                # columns, which would needlessly demote the query to the
                # Volcano tier).
                pipeline.always_empty = True
                return pipeline
            left_keys = _join_keys(evaluate_batch(plan.left_key, left), left.count)
            table = self.table_builder(left_keys)
            self.counters.join_build_rows += left.count
            pipeline.stages.append(
                traced_stage(
                    self.trace,
                    plan,
                    HashJoinStage(
                        left, table, left_keys.dtype.kind, plan.right_key,
                        plan.residual,
                    ),
                )
            )
            return pipeline
        if isinstance(plan, PhysNestedLoopJoin):
            if plan.outer:
                raise VectorizationError(
                    "outer join is served by the Volcano interpreter"
                )
            left = self.materializer(self.compile(plan.left), self)
            pipeline = self.compile(plan.right)
            if left.count == 0 or pipeline.always_empty:
                pipeline.always_empty = True
                return pipeline
            pipeline.stages.append(
                traced_stage(
                    self.trace, plan, NestedLoopJoinStage(left, plan.predicate)
                )
            )
            return pipeline
        raise VectorizationError(
            f"cannot interpret operator {plan.describe()} over batches"
        )

    def store_scan_caches(self) -> None:
        """Flush the scan operators' cache materializations (main thread)."""
        for operator in self.scan_operators:
            operator.store_materialized()

    # -- helpers -------------------------------------------------------------

    def _scan_operator(self, plan: PhysScan) -> ScanOperator:
        dataset = self.catalog.get(plan.dataset)
        plugin = self.plugins.get(dataset.format)
        if plugin is None:
            raise ExecutionError(f"no plug-in registered for format {dataset.format!r}")
        operator = ScanOperator(
            plan, dataset, plugin, self.cache_manager, params=self.params,
            context=self.context,
        )
        self.scan_operators.append(operator)
        return operator

    def _scan_source(
        self, plan: PhysicalPlan, binding: str
    ) -> tuple[Dataset, InputPlugin]:
        for node in plan.walk():
            if isinstance(node, PhysScan) and node.binding == binding:
                dataset = self.catalog.get(node.dataset)
                plugin = self.plugins.get(dataset.format)
                if plugin is None:
                    raise ExecutionError(
                        f"no plug-in registered for format {dataset.format!r}"
                    )
                return dataset, plugin
        raise VectorizationError(
            f"binding {binding!r} is not backed by a scan in this plan"
        )


# ---------------------------------------------------------------------------
# Shared group-by plumbing (used by the serial and the parallel tier)
# ---------------------------------------------------------------------------


def collect_nest_aggregates(
    plan: PhysNest,
) -> tuple[dict[tuple, int], list[AggregateCall]]:
    """Classify a Nest's output columns into group keys and aggregates.

    Returns (fingerprint → group-key index, unique aggregate calls).  Raises
    :class:`VectorizationError` for output columns that are neither, which
    only the Volcano interpreter serves.
    """
    group_key_fingerprints = {
        expression.fingerprint(): index
        for index, expression in enumerate(plan.group_by)
    }
    aggregates: list[AggregateCall] = []
    seen: set[tuple] = set()
    for column in plan.columns:
        fingerprint = column.expression.fingerprint()
        if fingerprint in group_key_fingerprints:
            continue
        if not contains_aggregate(column.expression):
            raise VectorizationError(
                f"group-by output column {column.name!r} is neither a group "
                "key nor an aggregate; served by the Volcano interpreter"
            )
        for aggregate in iter_aggregates(column.expression):
            if aggregate.fingerprint() not in seen:
                seen.add(aggregate.fingerprint())
                aggregates.append(aggregate)
    return group_key_fingerprints, aggregates


def finish_nest_columns(
    plan: PhysNest,
    group_key_fingerprints: dict[tuple, int],
    grouping: radix.GroupingResult,
    aggregate_results: dict[tuple, np.ndarray],
    params: Mapping[int | str, object] | None = None,
) -> dict[str, Any]:
    """Assemble a Nest's output columns from grouped keys and per-group
    aggregate result columns.

    Each aggregate's result column is exposed under a synthetic binding, then
    the heads are finished with the vectorized evaluator — this keeps
    arithmetic/logical combinations of aggregates (e.g. ``max(x) > 5 and
    min(x) > 0``) on the batch path; ``params`` keeps query parameters in the
    heads (e.g. ``sum(x) * :rate``) evaluable.
    """
    group_batch = Batch(count=grouping.num_groups, params=params)
    results: dict[tuple, Expression] = {}
    for index, (fingerprint, values) in enumerate(aggregate_results.items()):
        reference = FieldRef(_AGG_BINDING, (f"agg_{index}",))
        group_batch.columns[(_AGG_BINDING, reference.path)] = np.asarray(values)
        results[fingerprint] = reference
    columns: dict[str, Any] = {}
    for column in plan.columns:
        fingerprint = column.expression.fingerprint()
        if fingerprint in group_key_fingerprints:
            index = group_key_fingerprints[fingerprint]
            columns[column.name] = grouping.key_arrays[index]
            continue
        final = replace_aggregates(column.expression, results)
        columns[column.name] = materialize(
            evaluate_batch(final, group_batch), grouping.num_groups
        )
    return columns


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class VectorizedExecutor:
    """Batch-vectorized interpreter over physical plans."""

    def __init__(
        self,
        catalog: Catalog,
        plugins: Mapping[str, InputPlugin],
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache_manager=None,
        params: Mapping[int | str, object] | None = None,
        hints: NullabilityHints | None = None,
        trace: TraceBuilder | None = None,
        context=None,
    ):
        self.catalog = catalog
        self.plugins = plugins
        self.batch_size = max(int(batch_size), 1)
        self.cache_manager = cache_manager
        self.params = params
        #: Per-query resilience context (deadline/cancel), threaded into the
        #: pipeline compiler so every batch observes it.
        self.context = context
        #: Static nullability hints from the plan analyzer: output columns /
        #: aggregate arguments proven non-nullable skip missing-mask work.
        self.hints = hints if hints is not None else EMPTY_HINTS
        #: Span trace of this execution (``None`` = untraced, zero overhead).
        self.trace = trace
        #: Counters mirrored into the engine's :class:`ExecutionProfile`.
        self.counters = PipelineCounters()
        #: Sort kernel this executor ran for a root ``PhysSort`` (``None``
        #: when the engine's columnar epilogue should handle the sort — small
        #: grouped/aggregated outputs are cheaper to sort once materialized).
        self.sort_strategy: str | None = None

    # -- public API ----------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> tuple[list[str], dict[str, Any]]:
        """Execute a plan; returns (column names, column values)."""
        sort_plan: PhysSort | None = None
        if isinstance(plan, PhysSort):
            sort_plan = plan
            plan = plan.child
        if isinstance(plan, PhysReduce):
            names, columns, compiler = self._execute_reduce(plan, sort_plan)
        elif isinstance(plan, PhysNest):
            names, columns, compiler = self._execute_nest(plan)
        else:
            raise ExecutionError(
                f"the plan root must be Reduce or Nest, got {plan.describe()}"
            )
        compiler.store_scan_caches()
        return names, columns

    # -- batch pipelines -------------------------------------------------------

    def _compile(self, child: PhysicalPlan) -> tuple[PipelineCompiler, CompiledPipeline]:
        compiler = PipelineCompiler(
            self.catalog,
            self.plugins,
            self.batch_size,
            cache_manager=self.cache_manager,
            counters=self.counters,
            params=self.params,
            trace=self.trace,
            context=self.context,
        )
        return compiler, compiler.compile(child)

    def _pipeline_batches(self, pipeline: CompiledPipeline) -> Iterator[Batch]:
        if pipeline.always_empty:
            return
        for batch in pipeline.source.iter_batches(self.counters, self.batch_size):
            out = pipeline.process(batch, self.counters)
            if out is not None:
                yield out

    # -- roots -----------------------------------------------------------------

    def _execute_reduce(
        self, plan: PhysReduce, sort_plan: PhysSort | None = None
    ) -> tuple[list[str], dict[str, Any], PipelineCompiler]:
        names = [column.name for column in plan.columns]
        compiler, pipeline = self._compile(plan.child)
        aggregated = any(contains_aggregate(column.expression) for column in plan.columns)
        if not aggregated:
            limit = (
                resolve_limit(sort_plan.limit, self.params)
                if sort_plan is not None
                else None
            )
            if sort_plan is not None and sort_plan.keys and limit is not None:
                return (
                    *self._reduce_streaming_topk(plan, pipeline, sort_plan, limit),
                    compiler,
                )
            unique_columns = unique_output_columns(plan.columns)
            chunks: dict[str, list[np.ndarray]] = {name: [] for name in names}
            total = 0
            for batch in self._pipeline_batches(pipeline):
                for column in unique_columns:
                    chunks[column.name].append(
                        materialize(
                            evaluate_batch(column.expression, batch), batch.count
                        )
                    )
                total += batch.count
                if limit is not None and total >= limit:
                    # Pure LIMIT (keys would have taken the streaming top-K
                    # path): enough rows survived — stop scanning.  The
                    # engine's epilogue slices the exact prefix.
                    break
            # output_rows counts the rows emitted into the result: a pure
            # LIMIT stops scanning mid-batch, and the engine slices the
            # exact prefix off the final (possibly overshooting) batch.
            self.counters.output_rows += total if limit is None else min(total, limit)
            columns = {name: concat_chunks(parts) for name, parts in chunks.items()}
            if sort_plan is not None and sort_plan.keys:
                self.counters.rows_sorted += total
                length, columns, strategy = sort_columns(
                    names, total, columns, sort_plan.keys, limit,
                    self.hints.non_null_columns,
                )
                self.sort_strategy = strategy
            return names, columns, compiler
        accumulators = _BatchAggregates(
            plan.columns, self.hints.non_null_aggregate_args
        )
        for batch in self._pipeline_batches(pipeline):
            accumulators.update(batch)
        values = accumulators.finalize()
        self.counters.output_rows += 1
        finish_env = parameter_env(self.params)
        columns = {}
        for column in plan.columns:
            final = replace_aggregates(column.expression, literal_results(values))
            columns[column.name] = [_python_value(final.evaluate(finish_env))]
        return names, columns, compiler

    def _reduce_streaming_topk(
        self,
        plan: PhysReduce,
        pipeline: CompiledPipeline,
        sort_plan: PhysSort,
        limit: int,
    ) -> tuple[list[str], dict[str, Any]]:
        """ORDER BY + LIMIT over a projection: bounded streaming top-K.

        Each batch is pruned to the K rows that can still reach the result
        before the next batch streams in, so the full input is never
        materialized — see :class:`repro.core.sort.TopKAccumulator`.
        """
        names = [column.name for column in plan.columns]
        unique_columns = unique_output_columns(plan.columns)
        if limit == 0:
            # Evaluate (only) the first batch so the empty result keeps the
            # columns' real dtypes, matching the other tiers' ``buffer[:0]``.
            self.sort_strategy = STRATEGY_TOPK
            for batch in self._pipeline_batches(pipeline):
                return names, {
                    column.name: materialize(
                        evaluate_batch(column.expression, batch), batch.count
                    )[:0]
                    for column in unique_columns
                }
            return names, {name: np.zeros(0, dtype=np.float64) for name in names}
        accumulator = TopKAccumulator(
            names, sort_plan.keys, limit, self.hints.non_null_columns
        )
        for batch in self._pipeline_batches(pipeline):
            columns = {
                column.name: materialize(
                    evaluate_batch(column.expression, batch), batch.count
                )
                for column in unique_columns
            }
            accumulator.push(columns, batch.count)
        length, columns, strategy = accumulator.finish()
        self.counters.rows_sorted += accumulator.rows_sorted
        self.counters.output_rows += length
        self.sort_strategy = strategy
        return names, columns

    def _execute_nest(
        self, plan: PhysNest
    ) -> tuple[list[str], dict[str, Any], PipelineCompiler]:
        names = [column.name for column in plan.columns]
        group_key_fingerprints, aggregates = collect_nest_aggregates(plan)
        compiler, pipeline = self._compile(plan.child)

        key_chunks: list[list[np.ndarray]] = [[] for _ in plan.group_by]
        argument_chunks: dict[tuple, list[np.ndarray]] = {
            aggregate.fingerprint(): []
            for aggregate in aggregates
            if aggregate.argument is not None
        }
        total = 0
        for batch in self._pipeline_batches(pipeline):
            for index, expression in enumerate(plan.group_by):
                key_chunks[index].append(
                    materialize(evaluate_batch(expression, batch), batch.count)
                )
            for aggregate in aggregates:
                if aggregate.argument is None:
                    continue
                argument_chunks[aggregate.fingerprint()].append(
                    materialize(
                        evaluate_batch(aggregate.argument, batch), batch.count
                    )
                )
            total += batch.count
        if total == 0:
            return names, {name: [] for name in names}, compiler

        key_arrays = [np.concatenate(chunks) for chunks in key_chunks]
        # radix_group raises VectorizationError for keys containing missing
        # values, which the engine turns into a Volcano fallback.
        grouping = radix.radix_group(key_arrays)
        self.counters.groups_built += grouping.num_groups
        self.counters.output_rows += grouping.num_groups

        aggregate_results: dict[tuple, np.ndarray] = {}
        for aggregate in aggregates:
            fingerprint = aggregate.fingerprint()
            values = (
                np.concatenate(argument_chunks[fingerprint])
                if aggregate.argument is not None
                else None
            )
            aggregate_results[fingerprint] = radix.group_aggregate(
                aggregate.func, grouping.group_ids, grouping.num_groups, values
            )
        columns = finish_nest_columns(
            plan, group_key_fingerprints, grouping, aggregate_results,
            params=self.params,
        )
        return names, columns, compiler


# ---------------------------------------------------------------------------
# Aggregation helpers
# ---------------------------------------------------------------------------


class _BatchAggregates(AggregateAccumulators):
    """Running global aggregates, updated one batch at a time.

    Same state and finalization as the Volcano accumulators (the shared base
    class), but folds whole batches with NumPy reductions instead of one
    ``update`` per tuple.  ``non_null_args`` carries the fingerprints of
    aggregate calls whose argument the static analyzer proved non-nullable:
    for those the per-batch valid-mask pass (a NaN scan over floats, a
    per-element probe over object columns) is skipped entirely.
    """

    def __init__(self, columns, non_null_args: frozenset[tuple] = frozenset()):
        super().__init__(columns)
        self.non_null_args = frozenset(non_null_args)

    def update(self, batch: Batch) -> None:
        self.count += batch.count
        for aggregate in self.aggregates:
            if aggregate.func == "count" and aggregate.argument is None:
                continue
            fingerprint = aggregate.fingerprint()
            values = materialize(
                evaluate_batch(aggregate.argument, batch), batch.count
            )
            valid = (
                None
                if fingerprint in self.non_null_args
                else _valid_mask(values)
            )
            if valid is not None:
                values = values[valid]
            if len(values) == 0:
                continue
            self.counts[fingerprint] += len(values)
            if aggregate.func in ("sum", "avg"):
                if values.dtype == object or (
                    values.dtype.kind in "iu"
                    and radix._int_sum_may_overflow(values)
                ):
                    batch_sum = sum(values.tolist())  # exact Python ints
                elif values.dtype.kind in "iub":
                    batch_sum = int(np.sum(values, dtype=np.int64))
                else:
                    batch_sum = float(np.sum(values.astype(np.float64)))
                self.sums[fingerprint] += batch_sum
            elif aggregate.func == "max":
                batch_max = _python_value(values.max())
                current = self.maxs.get(fingerprint)
                self.maxs[fingerprint] = (
                    batch_max if current is None else max(current, batch_max)
                )
            elif aggregate.func == "min":
                batch_min = _python_value(values.min())
                current = self.mins.get(fingerprint)
                self.mins[fingerprint] = (
                    batch_min if current is None else min(current, batch_min)
                )
            elif aggregate.func == "and":
                batch_all = bool(np.all(as_bool_array(values, len(values))))
                self.bools_and[fingerprint] = self.bools_and[fingerprint] and batch_all
            elif aggregate.func == "or":
                batch_any = bool(np.any(as_bool_array(values, len(values))))
                self.bools_or[fingerprint] = self.bools_or[fingerprint] or batch_any


def _join_keys(value: Any, count: int) -> np.ndarray:
    """Normalize a join key column: fixed-width strings to objects, bools to
    ints.  Keys containing missing values are rejected by the radix kernels
    themselves (shared with the codegen tier)."""
    keys = materialize(value, count)
    if keys.dtype.kind in "US":
        keys = keys.astype(object)
    if keys.dtype.kind == "b":
        return keys.astype(np.int64)
    return keys


def _align_probe_keys(
    build_kind: str, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray | None]:
    """Align a probe key batch with the build side's dtype without losing
    integer precision.

    Returns (aligned keys, original positions) — positions is ``None`` when
    every probe key survives, otherwise the indices of the kept keys (probe
    results must be mapped back through it).
    """
    probe_kind = probe_keys.dtype.kind
    if probe_kind in "iu" and build_kind in "iu":
        return probe_keys, None
    if probe_kind == build_kind:
        return probe_keys, None
    if build_kind in "iu" and probe_kind == "f":
        # Only integral float keys inside the int64 range can equal integer
        # build keys; probing the rest (including NaN-encoded nulls) would be
        # wasted work — and a blanket int cast would truncate 3.5 onto 3 or
        # wrap 1e19 onto INT64_MIN.
        integral = (
            np.isfinite(probe_keys)
            & (probe_keys == np.floor(probe_keys))
            & (probe_keys >= -(2.0**63))  # INT64_MIN itself is valid
            & (probe_keys < 2.0**63)
        )
        if integral.all():
            return probe_keys.astype(np.int64), None
        kept = np.nonzero(integral)[0]
        return probe_keys[kept].astype(np.int64), kept
    if build_kind == "f" and probe_kind in "iu":
        # Mirror of the case above: only integers exactly representable in
        # float64 can equal a float build key; a blanket cast would round
        # 2**53 + 1 onto 2**53 and fabricate matches.
        as_float = probe_keys.astype(np.float64)
        safe = (as_float >= -(2.0**63)) & (as_float < 2.0**63)
        round_trip = np.zeros_like(probe_keys)
        round_trip[safe] = as_float[safe].astype(probe_keys.dtype)
        exact = safe & (round_trip == probe_keys)
        if exact.all():
            return as_float, None
        kept = np.nonzero(exact)[0]
        return as_float[kept], kept
    raise VectorizationError(
        f"join keys of kinds {build_kind!r} and {probe_kind!r} are served by "
        "the Volcano interpreter"
    )
