"""Radix hash join and radix grouping kernels.

The paper keeps the heavy join/grouping machinery outside the generated code:
"Proteus uses hash-based algorithms for the join and grouping operators,
namely variations of the radix hash join algorithm ... wrapped in a C++
function" (§5.1).  The reproduction mirrors that split: the per-query
generated code calls these library kernels, which partition their inputs by a
radix of the key hash and match within each partition using vectorized
sort/search operations.

The materialized build side (:class:`RadixTable`) is exactly the structure the
caching manager reuses for partial plan matches (§6: the hash table built for
``A ⋈ B`` can serve ``A ⋈ C`` when the join key is the same).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError

DEFAULT_RADIX_BITS = 4


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


def partition_assignment(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Assign each key to a partition based on a radix of its hash."""
    if keys.dtype == object:
        hashes = np.fromiter(
            (hash(value) for value in keys), dtype=np.int64, count=len(keys)
        )
        return (hashes % num_partitions + num_partitions) % num_partitions
    if keys.dtype.kind == "f":
        integral = keys.astype(np.int64, copy=False) if np.all(np.isfinite(keys)) else \
            np.nan_to_num(keys).astype(np.int64)
        return (integral % num_partitions + num_partitions) % num_partitions
    integral = keys.astype(np.int64, copy=False)
    return (integral % num_partitions + num_partitions) % num_partitions


# ---------------------------------------------------------------------------
# Radix hash join
# ---------------------------------------------------------------------------


@dataclass
class RadixPartition:
    """One build-side partition: keys sorted, plus their original positions."""

    sorted_keys: np.ndarray
    original_positions: np.ndarray


@dataclass
class RadixTable:
    """A fully materialized (partitioned, clustered) join build side."""

    partitions: list[RadixPartition]
    num_partitions: int
    build_size: int

    @property
    def size_bytes(self) -> int:
        total = 0
        for partition in self.partitions:
            if partition.sorted_keys.dtype == object:
                total += sum(len(str(v)) + 48 for v in partition.sorted_keys)
            else:
                total += int(partition.sorted_keys.nbytes)
            total += int(partition.original_positions.nbytes)
        return total


def build_radix_table(keys: np.ndarray, bits: int = DEFAULT_RADIX_BITS) -> RadixTable:
    """Materialize the build side of a radix hash join."""
    keys = np.asarray(keys)
    num_partitions = 1 << bits
    assignment = partition_assignment(keys, num_partitions)
    partitions: list[RadixPartition] = []
    for partition_id in range(num_partitions):
        positions = np.nonzero(assignment == partition_id)[0]
        partition_keys = keys[positions]
        order = np.argsort(partition_keys, kind="stable")
        partitions.append(
            RadixPartition(
                sorted_keys=partition_keys[order],
                original_positions=positions[order],
            )
        )
    return RadixTable(partitions=partitions, num_partitions=num_partitions,
                      build_size=len(keys))


def probe_radix_table(
    table: RadixTable, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Probe a radix table; returns aligned (build_positions, probe_positions)."""
    probe_keys = np.asarray(probe_keys)
    assignment = partition_assignment(probe_keys, table.num_partitions)
    build_chunks: list[np.ndarray] = []
    probe_chunks: list[np.ndarray] = []
    for partition_id, partition in enumerate(table.partitions):
        if len(partition.sorted_keys) == 0:
            continue
        probe_positions = np.nonzero(assignment == partition_id)[0]
        if len(probe_positions) == 0:
            continue
        keys = probe_keys[probe_positions]
        lo = np.searchsorted(partition.sorted_keys, keys, side="left")
        hi = np.searchsorted(partition.sorted_keys, keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            continue
        probe_expanded = np.repeat(probe_positions, counts)
        cumulative = np.cumsum(counts)
        within = np.arange(total) - np.repeat(cumulative - counts, counts)
        build_sorted_positions = np.repeat(lo, counts) + within
        build_chunks.append(partition.original_positions[build_sorted_positions])
        probe_chunks.append(probe_expanded)
    if not build_chunks:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(build_chunks), np.concatenate(probe_chunks)


def radix_join(
    left_keys: np.ndarray, right_keys: np.ndarray, bits: int = DEFAULT_RADIX_BITS
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join two key arrays; returns aligned (left_positions, right_positions)."""
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if left_keys.dtype.kind in "if" and right_keys.dtype.kind in "if" and \
            left_keys.dtype != right_keys.dtype:
        left_keys = left_keys.astype(np.float64)
        right_keys = right_keys.astype(np.float64)
    table = build_radix_table(left_keys, bits=bits)
    left_positions, right_positions = probe_radix_table(table, right_keys)
    return left_positions, right_positions


# ---------------------------------------------------------------------------
# Radix grouping
# ---------------------------------------------------------------------------


@dataclass
class GroupingResult:
    """Output of the radix grouping kernel."""

    group_ids: np.ndarray
    num_groups: int
    key_arrays: list[np.ndarray]


def radix_group(key_arrays: list[np.ndarray]) -> GroupingResult:
    """Assign each input row to a group identified by its key combination."""
    if not key_arrays:
        raise ExecutionError("grouping requires at least one key")
    length = len(key_arrays[0])
    for keys in key_arrays:
        if len(keys) != length:
            raise ExecutionError("group key arrays must have equal length")
    combined = np.zeros(length, dtype=np.int64)
    factorized: list[tuple[np.ndarray, np.ndarray]] = []
    for keys in key_arrays:
        uniques, inverse = np.unique(np.asarray(keys), return_inverse=True)
        factorized.append((uniques, inverse))
        combined = combined * max(len(uniques), 1) + inverse
    unique_codes, first_positions, group_ids = np.unique(
        combined, return_index=True, return_inverse=True
    )
    representative_keys = [
        np.asarray(keys)[first_positions] for keys in key_arrays
    ]
    return GroupingResult(
        group_ids=group_ids.astype(np.int64),
        num_groups=len(unique_codes),
        key_arrays=representative_keys,
    )


def group_aggregate(
    func: str,
    group_ids: np.ndarray,
    num_groups: int,
    values: np.ndarray | None = None,
) -> np.ndarray:
    """Compute one aggregate per group."""
    if func == "count":
        return np.bincount(group_ids, minlength=num_groups).astype(np.int64)
    if values is None:
        raise ExecutionError(f"aggregate {func!r} requires input values")
    values = np.asarray(values)
    if func == "sum":
        return np.bincount(group_ids, weights=values.astype(np.float64),
                           minlength=num_groups)
    if func == "avg":
        sums = np.bincount(group_ids, weights=values.astype(np.float64),
                           minlength=num_groups)
        counts = np.bincount(group_ids, minlength=num_groups)
        return sums / np.maximum(counts, 1)
    if func == "max":
        out = np.full(num_groups, -np.inf, dtype=np.float64)
        np.maximum.at(out, group_ids, values.astype(np.float64))
        return out
    if func == "min":
        out = np.full(num_groups, np.inf, dtype=np.float64)
        np.minimum.at(out, group_ids, values.astype(np.float64))
        return out
    if func == "and":
        out = np.ones(num_groups, dtype=bool)
        np.logical_and.at(out, group_ids, values.astype(bool))
        return out
    if func == "or":
        out = np.zeros(num_groups, dtype=bool)
        np.logical_or.at(out, group_ids, values.astype(bool))
        return out
    raise ExecutionError(f"unknown aggregate {func!r}")


def scalar_aggregate(func: str, values: np.ndarray | None, count: int) -> float | int | bool:
    """Compute a global (ungrouped) aggregate."""
    if func == "count":
        return int(count)
    if values is None:
        raise ExecutionError(f"aggregate {func!r} requires input values")
    values = np.asarray(values)
    if len(values) == 0:
        return {"sum": 0.0, "avg": float("nan"), "max": float("nan"),
                "min": float("nan"), "and": True, "or": False}[func]
    if func == "sum":
        result = values.sum()
    elif func == "avg":
        result = values.mean()
    elif func == "max":
        result = values.max()
    elif func == "min":
        result = values.min()
    elif func == "and":
        result = bool(np.all(values))
    elif func == "or":
        result = bool(np.any(values))
    else:
        raise ExecutionError(f"unknown aggregate {func!r}")
    if isinstance(result, np.generic):
        return result.item()
    return result
