"""Radix hash join and radix grouping kernels.

The paper keeps the heavy join/grouping machinery outside the generated code:
"Proteus uses hash-based algorithms for the join and grouping operators,
namely variations of the radix hash join algorithm ... wrapped in a C++
function" (§5.1).  The reproduction mirrors that split: the per-query
generated code calls these library kernels, which partition their inputs by a
radix of the key hash and match within each partition using vectorized
sort/search operations.

The materialized build side (:class:`RadixTable`) is exactly the structure the
caching manager reuses for partial plan matches (§6: the hash table built for
``A ⋈ B`` can serve ``A ⋈ C`` when the join key is the same).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Shared scalar operator tables: arithmetic carries NumPy-aligned
# zero-divisor semantics (plain operators would raise ZeroDivisionError on
# Python scalars where NumPy buffers yield inf/NaN), and sharing both maps
# keeps every tier's operator semantics in one place.
from repro.core.expressions import (
    ARITHMETIC_FUNCS as _ARITHMETIC_FUNCS,
    COMPARISON_FUNCS as _COMPARISON_FUNCS,
)
# is_missing is the canonical scalar definition of "missing" (None / NaN),
# re-exported here for the kernels' callers.
from repro.core.types import is_missing  # noqa: F401
from repro.errors import ExecutionError, VectorizationError

DEFAULT_RADIX_BITS = 4


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


def reject_missing_keys(keys: np.ndarray, operation: str) -> None:
    """The columnar kernels cannot key on missing values: np.unique/argsort
    cannot sort ``None`` and a NaN key would surface as ``nan`` where the
    tuple-at-a-time interpreter produces ``None``.  Raising here makes every
    columnar tier (generated code and batch interpreter alike) fall back to
    the Volcano interpreter for such data."""
    if missing_mask(keys) is not None:
        raise VectorizationError(
            f"{operation} on keys containing missing values is served by the "
            "Volcano interpreter"
        )


def partition_assignment(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Assign each key to a partition based on a radix of its hash."""
    if keys.dtype == object:
        hashes = np.fromiter(
            (hash(value) for value in keys), dtype=np.int64, count=len(keys)
        )
        return (hashes % num_partitions + num_partitions) % num_partitions
    if keys.dtype.kind == "f":
        integral = keys.astype(np.int64, copy=False) if np.all(np.isfinite(keys)) else \
            np.nan_to_num(keys).astype(np.int64)
        return (integral % num_partitions + num_partitions) % num_partitions
    integral = keys.astype(np.int64, copy=False)
    return (integral % num_partitions + num_partitions) % num_partitions


# ---------------------------------------------------------------------------
# Radix hash join
# ---------------------------------------------------------------------------


@dataclass
class RadixPartition:
    """One build-side partition: keys sorted, plus their original positions."""

    sorted_keys: np.ndarray
    original_positions: np.ndarray


@dataclass
class RadixTable:
    """A fully materialized (partitioned, clustered) join build side."""

    partitions: list[RadixPartition]
    num_partitions: int
    build_size: int

    @property
    def size_bytes(self) -> int:
        total = 0
        for partition in self.partitions:
            if partition.sorted_keys.dtype == object:
                total += sum(len(str(v)) + 48 for v in partition.sorted_keys)
            else:
                total += int(partition.sorted_keys.nbytes)
            total += int(partition.original_positions.nbytes)
        return total


def cluster_partition(keys: np.ndarray, positions: np.ndarray) -> RadixPartition:
    """Sort-cluster one build partition (the per-partition unit of work that
    the parallel tier fans out across workers)."""
    partition_keys = keys[positions]
    try:
        order = np.argsort(partition_keys, kind="stable")
    except TypeError as exc:
        raise VectorizationError(
            f"joining on mixed-type keys is served by the Volcano "
            f"interpreter ({exc})"
        ) from exc
    return RadixPartition(
        sorted_keys=partition_keys[order],
        original_positions=positions[order],
    )


def build_radix_table(keys: np.ndarray, bits: int = DEFAULT_RADIX_BITS) -> RadixTable:
    """Materialize the build side of a radix hash join."""
    keys = np.asarray(keys)
    reject_missing_keys(keys, "join")
    num_partitions = 1 << bits
    assignment = partition_assignment(keys, num_partitions)
    partitions = [
        cluster_partition(keys, np.nonzero(assignment == partition_id)[0])
        for partition_id in range(num_partitions)
    ]
    return RadixTable(partitions=partitions, num_partitions=num_partitions,
                      build_size=len(keys))


def probe_radix_table(
    table: RadixTable, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Probe a radix table; returns aligned (build_positions, probe_positions)."""
    probe_keys = np.asarray(probe_keys)
    reject_missing_keys(probe_keys, "join")
    assignment = partition_assignment(probe_keys, table.num_partitions)
    build_chunks: list[np.ndarray] = []
    probe_chunks: list[np.ndarray] = []
    for partition_id, partition in enumerate(table.partitions):
        if len(partition.sorted_keys) == 0:
            continue
        probe_positions = np.nonzero(assignment == partition_id)[0]
        if len(probe_positions) == 0:
            continue
        keys = probe_keys[probe_positions]
        try:
            lo = np.searchsorted(partition.sorted_keys, keys, side="left")
            hi = np.searchsorted(partition.sorted_keys, keys, side="right")
        except TypeError as exc:
            raise VectorizationError(
                f"joining on mixed-type keys is served by the Volcano "
                f"interpreter ({exc})"
            ) from exc
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            continue
        probe_expanded = np.repeat(probe_positions, counts)
        cumulative = np.cumsum(counts)
        within = np.arange(total) - np.repeat(cumulative - counts, counts)
        build_sorted_positions = np.repeat(lo, counts) + within
        build_chunks.append(partition.original_positions[build_sorted_positions])
        probe_chunks.append(probe_expanded)
    if not build_chunks:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(build_chunks), np.concatenate(probe_chunks)


def radix_join(
    left_keys: np.ndarray, right_keys: np.ndarray, bits: int = DEFAULT_RADIX_BITS
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join two key arrays; returns aligned (left_positions, right_positions)."""
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if left_keys.dtype.kind in "if" and right_keys.dtype.kind in "if" and \
            left_keys.dtype != right_keys.dtype:
        left_keys = left_keys.astype(np.float64)
        right_keys = right_keys.astype(np.float64)
    table = build_radix_table(left_keys, bits=bits)
    left_positions, right_positions = probe_radix_table(table, right_keys)
    return left_positions, right_positions


# ---------------------------------------------------------------------------
# Radix grouping
# ---------------------------------------------------------------------------


@dataclass
class GroupingResult:
    """Output of the radix grouping kernel."""

    group_ids: np.ndarray
    num_groups: int
    key_arrays: list[np.ndarray]


def radix_group(key_arrays: list[np.ndarray]) -> GroupingResult:
    """Assign each input row to a group identified by its key combination."""
    if not key_arrays:
        raise ExecutionError("grouping requires at least one key")
    length = len(key_arrays[0])
    for keys in key_arrays:
        if len(keys) != length:
            raise ExecutionError("group key arrays must have equal length")
        reject_missing_keys(np.asarray(keys), "grouping")
    combined = np.zeros(length, dtype=np.int64)
    factorized: list[tuple[np.ndarray, np.ndarray]] = []
    capacity = 1  # exact Python int: the mixed-radix code space
    for keys in key_arrays:
        try:
            uniques, inverse = np.unique(np.asarray(keys), return_inverse=True)
        except TypeError as exc:
            raise VectorizationError(
                f"grouping on mixed-type keys is served by the Volcano "
                f"interpreter ({exc})"
            ) from exc
        factorized.append((uniques, inverse))
        capacity *= max(len(uniques), 1)
        if capacity >= 2**63:
            # The combined group code would wrap int64, silently merging
            # distinct key combinations; fall back.
            raise VectorizationError(
                "grouping key-combination space exceeds int64; served by "
                "the Volcano interpreter"
            )
        combined = combined * max(len(uniques), 1) + inverse
    unique_codes, first_positions, group_ids = np.unique(
        combined, return_index=True, return_inverse=True
    )
    representative_keys = [
        np.asarray(keys)[first_positions] for keys in key_arrays
    ]
    return GroupingResult(
        group_ids=group_ids.astype(np.int64),
        num_groups=len(unique_codes),
        key_arrays=representative_keys,
    )




def missing_mask(values: np.ndarray) -> np.ndarray | None:
    """Mask of missing entries in a column buffer (``None`` in object buffers,
    NaN in float buffers), or ``None`` when nothing is missing.  This is the
    single definition of "missing" shared by the aggregate kernels and the
    vectorized executor."""
    if values.dtype == object:
        mask = np.fromiter(
            (is_missing(v) for v in values), dtype=bool, count=len(values)
        )
        return mask if mask.any() else None
    if values.dtype.kind == "f":
        mask = np.isnan(values)
        return mask if mask.any() else None
    return None


def _drop_missing(values: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
    """Strip missing inputs before reducing, matching the tuple-at-a-time
    accumulators which skip nulls.  Returns (kept values, keep mask or
    ``None`` when nothing was dropped)."""
    mask = missing_mask(values)
    if mask is None:
        return values, None
    keep = ~mask
    return values[keep], keep


def bool_mask(values) -> np.ndarray:
    """Coerce a predicate result to a boolean mask.  Missing inputs are
    false, matching ``bool(None)`` in the tuple-at-a-time interpreter.  Used
    by both the generated code (``rt.mask``) and the vectorized executor so
    the tiers cannot drift apart."""
    array = np.asarray(values)
    if array.ndim == 0:
        value = array.item()
        return np.asarray(False if is_missing(value) else bool(value))
    if array.dtype == object:
        return np.fromiter(
            (False if is_missing(v) else bool(v) for v in array),
            dtype=bool,
            count=len(array),
        )
    if array.dtype.kind == "f":
        return array.astype(bool) & ~np.isnan(array)
    return array.astype(bool, copy=False)




def null_safe_arith(op: str, left, right):
    """Vectorized arithmetic where a missing (``None``) operand yields
    ``None``, matching the tuple-at-a-time interpreter.  Numeric buffers take
    the plain NumPy operator (NaN already propagates there); object buffers —
    which is where ``None`` can appear, e.g. all-missing group extrema — go
    elementwise.  Integer operations that could wrap int64 take the exact
    Python-int path instead (silent wraparound would diverge from the
    tuple-at-a-time interpreter's arbitrary-precision ints)."""
    combine = _ARITHMETIC_FUNCS[op]
    left_arr = np.asarray(left)
    right_arr = np.asarray(right)
    if left_arr.dtype == object or right_arr.dtype == object:
        elementwise = np.frompyfunc(
            lambda a, b: None if a is None or b is None else combine(a, b), 2, 1
        )
        return elementwise(left_arr, right_arr)
    if (
        op in ("+", "-", "*")
        and left_arr.dtype.kind in "iu"
        and right_arr.dtype.kind in "iu"
        and _int_overflow_possible(op, left_arr, right_arr)
    ):
        elementwise = np.frompyfunc(lambda a, b: combine(int(a), int(b)), 2, 1)
        return elementwise(left_arr, right_arr)
    return combine(left, right)


def _int_bound(array: np.ndarray) -> int:
    """Largest absolute value of an integer buffer, computed exactly."""
    if array.size == 0:
        return 0
    return max(abs(int(array.min())), abs(int(array.max())))


def _int_sum_may_overflow(values: np.ndarray) -> bool:
    """Conservative check: could summing this integer buffer wrap int64?"""
    return _int_bound(values) * max(len(values), 1) >= 2**63


def _int_overflow_possible(op: str, left: np.ndarray, right: np.ndarray) -> bool:
    left_bound = _int_bound(left)
    right_bound = _int_bound(right)
    if op == "*":
        return left_bound * right_bound >= 2**63
    return left_bound + right_bound >= 2**63


def null_safe_neg(value):
    """Vectorized unary minus: ``None`` stays ``None`` and bool buffers
    negate through int (``-True == -1``), as in the tuple-at-a-time
    interpreter."""
    array = np.asarray(value)
    if array.dtype == object:
        return np.frompyfunc(lambda v: None if v is None else -v, 1, 1)(array)
    if array.dtype.kind == "b":
        return -(array.astype(np.int64))
    return -array


def null_safe_compare(op: str, left, right) -> np.ndarray:
    """Vectorized comparison where any missing operand yields false, as in
    the tuple-at-a-time interpreter.  Object buffers (which can hold ``None``,
    e.g. all-missing aggregate results) go elementwise; numeric buffers take
    the plain NumPy operator, where NaN already compares false for every
    operator but ``!=`` (masked explicitly)."""
    compare = _COMPARISON_FUNCS[op]
    left_arr = np.asarray(left)
    right_arr = np.asarray(right)
    if left_arr.dtype == object or right_arr.dtype == object:
        missing = is_missing
        elementwise = np.frompyfunc(
            lambda a, b: False if missing(a) or missing(b) else compare(a, b), 2, 1
        )
        # frompyfunc returns a bare scalar for 0-d inputs; normalize.
        return np.asarray(elementwise(left_arr, right_arr), dtype=bool)
    result = np.asarray(compare(left_arr, right_arr), dtype=bool)
    if op == "!=":
        for side in (left_arr, right_arr):
            if side.dtype.kind == "f":
                result = result & ~np.isnan(side)
    return result




def group_aggregate(
    func: str,
    group_ids: np.ndarray,
    num_groups: int,
    values: np.ndarray | None = None,
) -> np.ndarray:
    """Compute one aggregate per group (missing inputs are skipped)."""
    if func == "count" and values is None:
        return np.bincount(group_ids, minlength=num_groups).astype(np.int64)
    if values is None:
        raise ExecutionError(f"aggregate {func!r} requires input values")
    values = np.asarray(values)
    values, keep = _drop_missing(values)
    if keep is not None:
        group_ids = group_ids[keep]
    if func == "count":
        return np.bincount(group_ids, minlength=num_groups).astype(np.int64)
    if func in ("sum", "avg"):
        if values.dtype == object or (
            values.dtype.kind in "iu" and _int_sum_may_overflow(values)
        ):
            # Exact Python-int accumulation: big-int object buffers, and
            # integer buffers whose total could wrap int64.
            totals = [0] * num_groups
            for group_id, value in zip(group_ids.tolist(), values.tolist()):
                totals[group_id] += value
            sums = np.empty(num_groups, dtype=object)
            sums[:] = totals
        elif values.dtype.kind in "iub":
            # Integer sums stay integers (float64 weights would round above
            # 2**53), matching the tuple-at-a-time accumulators.
            sums = np.zeros(num_groups, dtype=np.int64)
            np.add.at(sums, group_ids, values)
        else:
            sums = np.bincount(group_ids, weights=values.astype(np.float64),
                               minlength=num_groups)
        if func == "sum":
            return sums
        counts = np.bincount(group_ids, minlength=num_groups)
        if sums.dtype == object:
            return np.asarray([
                total / count if count else float("nan")
                for total, count in zip(sums.tolist(), counts.tolist())
            ])
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    if func in ("max", "min"):
        if values.dtype == object or values.dtype.kind in "US":
            pick = max if func == "max" else min
            boxed = np.full(num_groups, None, dtype=object)
            for group_id, value in zip(group_ids.tolist(), values.tolist()):
                current = boxed[group_id]
                boxed[group_id] = value if current is None else pick(current, value)
            return boxed
        reducer = np.maximum if func == "max" else np.minimum
        if values.dtype.kind in "iu":
            # Accumulate in the native integer dtype: routing int64 extrema
            # through float64 would round values above 2**53.
            info = np.iinfo(values.dtype)
            fill = info.min if func == "max" else info.max
            out = np.full(num_groups, fill, dtype=values.dtype)
            reducer.at(out, group_ids, values)
        elif values.dtype.kind == "b":
            fill = func == "min"
            out = np.full(num_groups, fill, dtype=np.bool_)
            reducer.at(out, group_ids, values)
        else:
            fill = -np.inf if func == "max" else np.inf
            out = np.full(num_groups, fill, dtype=np.float64)
            reducer.at(out, group_ids, values.astype(np.float64))
        counts = np.bincount(group_ids, minlength=num_groups)
        if np.any(counts == 0):
            # Groups with no non-missing input have no extremum (the
            # tuple-at-a-time accumulators report None for them).
            boxed = out.astype(object)
            boxed[counts == 0] = None
            return boxed
        return out
    if func == "and":
        out = np.ones(num_groups, dtype=bool)
        np.logical_and.at(out, group_ids, values.astype(bool))
        return out
    if func == "or":
        out = np.zeros(num_groups, dtype=bool)
        np.logical_or.at(out, group_ids, values.astype(bool))
        return out
    raise ExecutionError(f"unknown aggregate {func!r}")


def scalar_aggregate(func: str, values: np.ndarray | None, count: int) -> float | int | bool:
    """Compute a global (ungrouped) aggregate (missing inputs are skipped)."""
    if func == "count" and values is None:
        return int(count)
    if values is None:
        raise ExecutionError(f"aggregate {func!r} requires input values")
    values = np.asarray(values)
    values, _ = _drop_missing(values)
    if func == "count":
        return int(len(values))
    if len(values) == 0:
        # Matches the accumulators of the interpreted tiers: no non-missing
        # input means there is no extremum (None), an empty sum is integer 0.
        return {"sum": 0, "avg": float("nan"), "max": None,
                "min": None, "and": True, "or": False}[func]
    if func == "sum":
        if values.dtype.kind in "iu" and _int_sum_may_overflow(values):
            result = sum(values.tolist())  # exact Python-int accumulation
        else:
            result = values.sum()
    elif func == "avg":
        result = values.mean()
    elif func == "max":
        result = values.max()
    elif func == "min":
        result = values.min()
    elif func == "and":
        result = bool(np.all(values))
    elif func == "or":
        result = bool(np.any(values))
    else:
        raise ExecutionError(f"unknown aggregate {func!r}")
    if isinstance(result, np.generic):
        return result.item()
    return result
