"""Execution back-ends: radix join/grouping kernels, the vectorized batch
interpreter and the Volcano tuple-at-a-time interpreter."""
