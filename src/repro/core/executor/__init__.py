"""Execution back-ends: radix join/grouping kernels and the Volcano interpreter."""
