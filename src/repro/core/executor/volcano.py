"""Volcano-style interpreted executor.

This executor evaluates physical plans tuple-at-a-time through the classic
iterator model the paper identifies as the source of interpretation overhead
(§5): every operator exposes a ``__iter__`` that pulls one environment (a dict
of bindings) at a time from its child, and every expression is re-interpreted
per tuple.

It exists for two reasons:

* it is the *ablation baseline* for the engine-per-query claim — running the
  same physical plan through the Volcano interpreter and through the generated
  code isolates the benefit of code generation,
* it is the execution substrate of the simulated comparator systems in
  :mod:`repro.baselines`, which are, architecturally, static interpreted
  engines.

It also doubles as the fallback executor for query shapes the vectorized code
generator does not cover (e.g. record construction in output columns).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Any, Iterator, Mapping

import numpy as np

from repro.core.aggregate_utils import (
    AggregateAccumulators,
    literal_results,
    replace_aggregates,
    unique_output_columns,
)
from repro.core.types import is_missing, truthy
from repro.core.expressions import PARAMS_BINDING, contains_aggregate, parameter_env
from repro.core.physical import (
    PhysHashJoin,
    PhysNest,
    PhysNestedLoopJoin,
    PhysReduce,
    PhysScan,
    PhysSelect,
    PhysUnnest,
    PhysicalPlan,
)
from repro.errors import ExecutionError
from repro.obs.trace import TraceBuilder
from repro.plugins.base import InputPlugin, dig_path as _dig
from repro.storage.catalog import Catalog


class VolcanoExecutor:
    """Interpreted executor over physical plans."""

    def __init__(
        self,
        catalog: Catalog,
        plugins: Mapping[str, InputPlugin],
        params: Mapping[int | str, object] | None = None,
        trace: TraceBuilder | None = None,
        context=None,
    ):
        self.catalog = catalog
        self.plugins = plugins
        #: Per-query resilience context, checked every ``volcano_stride``
        #: scanned tuples (the tuple-at-a-time analogue of per-batch checks).
        self.context = context
        self._stride = context.volcano_stride if context is not None else 0
        self._ticks = 0
        #: Bound query-parameter values; placed into every scan environment
        #: under :data:`PARAMS_BINDING` so ``Parameter`` nodes evaluate.
        self.params = params
        #: Span trace of this execution; ``None`` (the default) makes
        #: ``_iterate`` return the raw operator iterators, untouched.
        self.trace = trace
        #: Proxy counters: tuples pulled through operators and predicate
        #: evaluations, used by the experiment reports as interpretation-
        #: overhead proxies.
        self.tuples_processed = 0
        self.predicate_evaluations = 0
        #: Profile counters with cross-tier semantics (the batch tiers and
        #: the codegen runtime count the same things the same way — see the
        #: differential suite in ``tests/test_obs.py``): records produced by
        #: scans plus flattened unnest elements, elements emitted by unnest
        #: operators pre-predicate (incl. outer null rows), and rows emitted
        #: into the result.  ``tuples_processed`` is intentionally left with
        #: its historical post-predicate semantics.
        self.rows_scanned = 0
        self.unnest_output_rows = 0
        self.output_rows = 0

    # -- public API -------------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> tuple[list[str], dict[str, list]]:
        """Execute a plan; returns (column names, column values)."""
        if isinstance(plan, PhysReduce):
            return self._execute_reduce(plan)
        if isinstance(plan, PhysNest):
            return self._execute_nest(plan)
        raise ExecutionError(
            f"the plan root must be Reduce or Nest, got {plan.describe()}"
        )

    # -- pipelines ----------------------------------------------------------------

    def _iterate(self, plan: PhysicalPlan) -> Iterator[dict[str, Any]]:
        iterator = self._dispatch(plan)
        if self.trace is None:
            return iterator
        return self._traced_iterate(plan, iterator)

    def _traced_iterate(
        self, plan: PhysicalPlan, iterator: Iterator[dict[str, Any]]
    ) -> Iterator[dict[str, Any]]:
        """Wrap one operator's iterator with a span.

        Time is *inclusive* of children (the pull model interleaves them);
        the renderer labels it as such.  Totals accumulate in locals and
        flush once per exhausted iterator, so tracing adds two clock reads
        per tuple, never a lock.
        """
        if isinstance(plan, PhysScan):
            name = f"scan:{plan.dataset}"
        else:
            name = type(plan).__name__.removeprefix("Phys").lower()
        accumulator = self.trace.operator(
            name,
            node=plan,
            inclusive=True,
            detail="tuple-at-a-time; time includes children",
        )
        seconds = 0.0
        rows = 0
        try:
            while True:
                started = time.perf_counter()
                try:
                    env = next(iterator)
                except StopIteration:
                    seconds += time.perf_counter() - started
                    return
                seconds += time.perf_counter() - started
                rows += 1
                yield env
        finally:
            accumulator.add(seconds=seconds, rows_out=rows)

    def _dispatch(self, plan: PhysicalPlan) -> Iterator[dict[str, Any]]:
        if isinstance(plan, PhysScan):
            yield from self._iterate_scan(plan)
        elif isinstance(plan, PhysSelect):
            predicate = plan.predicate
            for env in self._iterate(plan.child):
                self.predicate_evaluations += 1
                if truthy(predicate.evaluate(env)):
                    yield env
        elif isinstance(plan, PhysUnnest):
            yield from self._iterate_unnest(plan)
        elif isinstance(plan, PhysHashJoin):
            yield from self._iterate_hash_join(plan)
        elif isinstance(plan, PhysNestedLoopJoin):
            yield from self._iterate_nested_loop(plan)
        else:
            raise ExecutionError(f"cannot interpret operator {plan.describe()}")

    def _iterate_scan(self, plan: PhysScan) -> Iterator[dict[str, Any]]:
        dataset = self.catalog.get(plan.dataset)
        plugin = self.plugins.get(dataset.format)
        if plugin is None:
            raise ExecutionError(f"no plug-in registered for format {dataset.format!r}")
        # The general-purpose engine eagerly materializes whole records.
        if self.params:
            for record in plugin.iterate_rows(dataset, None):
                self.tuples_processed += 1
                self.rows_scanned += 1
                self._tick()
                yield {plan.binding: record, PARAMS_BINDING: self.params}
        else:
            for record in plugin.iterate_rows(dataset, None):
                self.tuples_processed += 1
                self.rows_scanned += 1
                self._tick()
                yield {plan.binding: record}

    def _tick(self) -> None:
        """Deadline/cancel check on a tuple-count stride (cheap per tuple)."""
        context = self.context
        if context is None:
            return
        self._ticks += 1
        if self._ticks >= self._stride:
            self._ticks = 0
            context.count("volcano_tuples", self._stride)
            context.check()

    def _iterate_unnest(self, plan: PhysUnnest) -> Iterator[dict[str, Any]]:
        for env in self._iterate(plan.child):
            parent = env.get(plan.binding)
            elements = _dig(parent, plan.path)
            if elements is None:
                elements = []
            if not isinstance(elements, (list, tuple)):
                raise ExecutionError(
                    f"field {'.'.join(plan.path)!r} of {plan.binding!r} is not a collection"
                )
            matched = False
            for element in elements:
                # Mirror the batch tiers' accounting: every flattened element
                # counts as a scanned row and an unnest output row *before*
                # the predicate runs (UnnestStage counts whole flattened
                # buffers the same way).
                self.rows_scanned += 1
                self.unnest_output_rows += 1
                self._tick()
                child_env = dict(env)
                child_env[plan.var] = element
                if plan.predicate is not None:
                    self.predicate_evaluations += 1
                    if not truthy(plan.predicate.evaluate(child_env)):
                        continue
                matched = True
                self.tuples_processed += 1
                yield child_env
            if plan.outer and not matched:
                # The batch tiers' outer unnest emits the null child row
                # inside the flattened buffers, so it lands in both counters
                # there; keep parity.
                self.rows_scanned += 1
                self.unnest_output_rows += 1
                child_env = dict(env)
                child_env[plan.var] = None
                yield child_env

    def _iterate_hash_join(self, plan: PhysHashJoin) -> Iterator[dict[str, Any]]:
        build: dict[Any, list[dict[str, Any]]] = defaultdict(list)
        for env in self._iterate(plan.left):
            key = plan.left_key.evaluate(env)
            if is_missing(key):
                # Missing keys join nothing: equality with missing is false
                # in every tier (dict identity would spuriously pair Nones).
                continue
            build[key].append(env)
        for env in self._iterate(plan.right):
            key = plan.right_key.evaluate(env)
            matches = build.get(key, []) if not is_missing(key) else []
            matched = False
            for left_env in matches:
                combined = {**left_env, **env}
                if plan.residual is not None:
                    self.predicate_evaluations += 1
                    if not truthy(plan.residual.evaluate(combined)):
                        continue
                matched = True
                self.tuples_processed += 1
                yield combined
            if plan.outer and not matched:
                yield {**{b: None for b in plan.left.bindings()}, **env}

    def _iterate_nested_loop(self, plan: PhysNestedLoopJoin) -> Iterator[dict[str, Any]]:
        left_envs = list(self._iterate(plan.left))
        for right_env in self._iterate(plan.right):
            for left_env in left_envs:
                combined = {**left_env, **right_env}
                if plan.predicate is not None:
                    self.predicate_evaluations += 1
                    if not truthy(plan.predicate.evaluate(combined)):
                        continue
                self.tuples_processed += 1
                yield combined

    # -- roots ---------------------------------------------------------------------

    def _execute_reduce(self, plan: PhysReduce) -> tuple[list[str], dict[str, list]]:
        names = [column.name for column in plan.columns]
        aggregated = any(contains_aggregate(column.expression) for column in plan.columns)
        if not aggregated:
            unique_columns = unique_output_columns(plan.columns)
            columns: dict[str, list] = {name: [] for name in names}
            for env in self._iterate(plan.child):
                self.output_rows += 1
                for column in unique_columns:
                    columns[column.name].append(column.expression.evaluate(env))
            return names, columns
        accumulators = _AggregateAccumulators(plan.columns)
        for env in self._iterate(plan.child):
            accumulators.update(env)
        values = accumulators.finalize()
        self.output_rows += 1
        finish_env = parameter_env(self.params)
        columns = {}
        for column in plan.columns:
            final = replace_aggregates(column.expression, literal_results(values))
            columns[column.name] = [final.evaluate(finish_env)]
        return names, columns

    def _execute_nest(self, plan: PhysNest) -> tuple[list[str], dict[str, list]]:
        names = [column.name for column in plan.columns]
        groups: dict[tuple, _AggregateAccumulators] = {}
        group_envs: dict[tuple, dict[str, Any]] = {}
        for env in self._iterate(plan.child):
            key = tuple(expression.evaluate(env) for expression in plan.group_by)
            if key not in groups:
                groups[key] = _AggregateAccumulators(plan.columns)
                group_envs[key] = env
            groups[key].update(env)
        unique_columns = unique_output_columns(plan.columns)
        finish_env = parameter_env(self.params)
        columns: dict[str, list] = {name: [] for name in names}
        self.output_rows += len(groups)
        for key, accumulators in groups.items():
            values = accumulators.finalize()
            env = group_envs[key]
            for column in unique_columns:
                if contains_aggregate(column.expression):
                    final = replace_aggregates(column.expression, literal_results(values))
                    columns[column.name].append(final.evaluate(finish_env))
                else:
                    columns[column.name].append(column.expression.evaluate(env))
        return names, columns


class _AggregateAccumulators(AggregateAccumulators):
    """Running aggregates for one group (or for the global reduction),
    updated one tuple environment at a time."""

    def update(self, env: dict[str, Any]) -> None:
        self.count += 1
        for aggregate in self.aggregates:
            fingerprint = aggregate.fingerprint()
            if aggregate.func == "count" and aggregate.argument is None:
                continue
            value = aggregate.argument.evaluate(env) if aggregate.argument is not None else None
            if is_missing(value):
                continue
            self.counts[fingerprint] += 1
            if aggregate.func in ("sum", "avg"):
                self.sums[fingerprint] += value
            elif aggregate.func == "max":
                current = self.maxs.get(fingerprint)
                self.maxs[fingerprint] = value if current is None else max(current, value)
            elif aggregate.func == "min":
                current = self.mins.get(fingerprint)
                self.mins[fingerprint] = value if current is None else min(current, value)
            elif aggregate.func == "and":
                self.bools_and[fingerprint] = self.bools_and[fingerprint] and bool(value)
            elif aggregate.func == "or":
                self.bools_or[fingerprint] = self.bools_or[fingerprint] or bool(value)


