"""Public engine API.

:class:`ProteusEngine` is the user-facing entry point of the reproduction.  It
owns the catalog, the input plug-ins, the memory and caching managers, the
optimizer and both executors, and wires them together exactly as Figure 2 of
the paper describes:

1. the query parser (SQL or comprehension syntax) produces a calculus
   expression, which the binder resolves against the catalog,
2. the normalizer and translator rewrite it into the nested relational
   algebra, which the optimizer lowers to a physical plan (selection/
   projection pushdown, join ordering, access-path selection against the
   caches),
3. the plan executes through a four-tier cascade:

   * **codegen** — the code generator collapses the plan into one specialized
     program executed against the query runtime (§5.1, the engine-per-query),
   * **vectorized-parallel** — when ``parallel_workers > 1``, shapes the
     generator does not cover run through the morsel-driven parallel batch
     interpreter: the driving scan splits into batch-aligned morsels that a
     work-stealing worker pool executes concurrently, with partial per-morsel
     aggregation and a deterministic morsel-ordered merge,
   * **vectorized** — the serial batch interpreter serves the same shapes on
     one core (and is the fallback when a scan cannot be split into morsels,
     e.g. the binary row format's per-tuple shim, or when the input fits a
     single morsel),
   * **volcano** — shapes the batch interpreters cannot serve (record
     construction in output columns, outer joins/unnests, null group keys)
     fall back to the tuple-at-a-time Volcano interpreter, the paper's
     "static general-purpose engine" baseline.

   The ablation flags ``enable_codegen``, ``enable_parallel`` and
   ``enable_vectorized`` disable tiers individually (``enable_vectorized``
   disables both batch tiers); ``ExecutionProfile.execution_tier`` records
   which tier actually served each query.
4. caches are populated as a side effect and reused by later queries — by
   the generated tier *and*, since the parallel subsystem landed, by both
   batch interpreters.

Parallelism tuning: ``parallel_workers`` defaults to 1 (serial).  Set it to
the number of physical cores for scan-heavy workloads; morsels are 64Ki rows
by default, so inputs of ~128Ki rows or more actually fan out, and smaller
inputs transparently stay on the serial tier where they are faster anyway.
Hardware parallelism is strongest where the per-morsel work runs in
GIL-releasing NumPy kernels — binary-column and cache-served scans, the
predicate/join/grouping kernels — while CSV/JSON value conversion is
Python-bound and gains mainly from the partial per-morsel aggregation (which
also helps on a single core by replacing one monolithic grouping sort with
cheaper per-morsel ones).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.caching.manager import CacheManager
from repro.caching.policies import CachingPolicy, DefaultCachingPolicy, NoCachingPolicy
from repro.core import types as t
from repro.core.types import python_value as _python_value
from repro.core.binder import bind_comprehension
from repro.core.calculus import Comprehension
from repro.core.codegen.generator import CodeGenerator
from repro.core.codegen.runtime import ExecutionProfile, QueryRuntime
from repro.core.comprehension_parser import parse_comprehension
from repro.core.executor.vectorized import DEFAULT_BATCH_SIZE, VectorizedExecutor
from repro.core.executor.volcano import VolcanoExecutor
from repro.core.parallel import ParallelVectorizedExecutor
from repro.core.normalizer import normalize
from repro.core.optimizer.planner import Planner
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.physical import PhysNest, PhysReduce, PhysicalPlan
from repro.core.sql_parser import parse_sql
from repro.core.translator import translate
from repro.errors import (
    CodegenError,
    ExecutionError,
    PlanningError,
    ProteusError,
    VectorizationError,
)
from repro.plugins.base import InputPlugin
from repro.plugins.binary_col_plugin import BinaryColumnPlugin
from repro.plugins.binary_row_plugin import BinaryRowPlugin
from repro.plugins.cache_plugin import CachePlugin
from repro.plugins.csv_plugin import CsvPlugin
from repro.plugins.json_plugin import JsonPlugin
from repro.storage.catalog import Catalog, DataFormat, Dataset
from repro.storage.memory import MemoryManager


@dataclass
class QueryResult:
    """The result of a query: named columns and materialized rows."""

    columns: list[str]
    rows: list[tuple]
    execution_seconds: float = 0.0
    used_codegen: bool = True
    #: Which execution tier served the query: "codegen",
    #: "vectorized-parallel", "vectorized" or "volcano".
    tier: str = "codegen"
    profile: ExecutionProfile | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        """Values of one output column."""
        try:
            index = self.columns.index(name)
        except ValueError as exc:
            raise ExecutionError(
                f"result has no column {name!r}; columns: {self.columns}"
            ) from exc
        return [row[index] for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns"
            )
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, Any]]:
        """The result as a list of dicts (one per row)."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class ProteusEngine:
    """An analytical query engine over heterogeneous raw data."""

    def __init__(
        self,
        cache_budget_bytes: int = 256 * 1024 * 1024,
        enable_caching: bool = True,
        enable_codegen: bool = True,
        enable_vectorized: bool = True,
        enable_parallel: bool = True,
        parallel_workers: int | None = None,
        enable_join_reordering: bool = True,
        vectorized_batch_size: int = DEFAULT_BATCH_SIZE,
        caching_policy: CachingPolicy | None = None,
    ):
        self.memory = MemoryManager(cache_budget_bytes=cache_budget_bytes)
        self.catalog = Catalog()
        self.enable_codegen = enable_codegen
        self.enable_vectorized = enable_vectorized
        #: ``parallel_workers`` is the degree of the morsel-driven parallel
        #: tier; 1 (the default) keeps execution serial.  ``enable_parallel``
        #: is the ablation switch for the tier as a whole.
        self.enable_parallel = enable_parallel
        self.parallel_workers = 1 if parallel_workers is None else max(int(parallel_workers), 1)
        self.vectorized_batch_size = vectorized_batch_size
        self.enable_caching = enable_caching
        policy = caching_policy
        if policy is None:
            policy = DefaultCachingPolicy() if enable_caching else NoCachingPolicy()
        self.cache_manager: CacheManager | None = (
            CacheManager(self.memory.arena, policy) if enable_caching else None
        )
        self.plugins: dict[str, InputPlugin] = {
            DataFormat.CSV: CsvPlugin(self.memory),
            DataFormat.JSON: JsonPlugin(self.memory),
            DataFormat.BINARY_ROW: BinaryRowPlugin(self.memory),
            DataFormat.BINARY_COLUMN: BinaryColumnPlugin(self.memory),
        }
        self.cache_plugin: CachePlugin | None = (
            CachePlugin(self.memory, self.cache_manager)
            if self.cache_manager is not None
            else None
        )
        if self.cache_plugin is not None:
            self.plugins[DataFormat.CACHE] = self.cache_plugin
        self.statistics = StatisticsManager(self.catalog)
        self.planner = Planner(
            self.catalog,
            self.statistics,
            cache_plugin=self.cache_plugin,
            enable_join_reordering=enable_join_reordering,
        )
        self.generator = CodeGenerator(self.catalog, self.plugins, self.cache_plugin)
        self._compiled: dict[tuple, Any] = {}
        self._parsed: dict[str, Comprehension] = {}
        #: Introspection of the most recent query.
        self.last_plan: PhysicalPlan | None = None
        self.last_generated_source: str | None = None
        self.last_profile: ExecutionProfile | None = None

    # ------------------------------------------------------------------------
    # Dataset registration
    # ------------------------------------------------------------------------

    def register_csv(
        self,
        name: str,
        path: str,
        schema: t.RecordType | Mapping | None = None,
        delimiter: str = ",",
        has_header: bool = True,
        stride: int = 5,
        analyze: bool = False,
    ) -> Dataset:
        """Register a raw CSV file as a queryable dataset."""
        options = {"delimiter": delimiter, "has_header": has_header, "stride": stride}
        return self._register(name, DataFormat.CSV, path, schema, options, analyze)

    def register_json(
        self,
        name: str,
        path: str,
        schema: t.RecordType | Mapping | None = None,
        sample_size: int = 50,
        analyze: bool = False,
    ) -> Dataset:
        """Register a raw JSON object stream as a queryable dataset."""
        options = {"sample_size": sample_size}
        return self._register(name, DataFormat.JSON, path, schema, options, analyze)

    def register_binary_columns(
        self, name: str, directory: str, analyze: bool = True
    ) -> Dataset:
        """Register a binary column table (directory of column files)."""
        return self._register(name, DataFormat.BINARY_COLUMN, directory, None, {}, analyze)

    def register_binary_rows(self, name: str, path: str, analyze: bool = True) -> Dataset:
        """Register a binary row table."""
        return self._register(name, DataFormat.BINARY_ROW, path, None, {}, analyze)

    def _register(
        self,
        name: str,
        data_format: str,
        path: str,
        schema: t.RecordType | Mapping | None,
        options: dict,
        analyze: bool,
    ) -> Dataset:
        plugin = self.plugins[data_format]
        if name in self.catalog:
            # Re-registration under an existing name: drop the old plug-in
            # state, any caches built from the previous data and every
            # compiled program (they bake Dataset objects in as constants),
            # exactly as ``unregister`` would — otherwise a compiled program
            # or cache entry from the old path/schema could serve stale
            # results.  A brand-new name cannot affect existing programs.
            old = self.catalog.get(name)
            old_plugin = self.plugins.get(old.format)
            if old_plugin is not None and hasattr(old_plugin, "invalidate"):
                old_plugin.invalidate(name)
            if self.cache_manager is not None:
                self.cache_manager.invalidate_dataset(name)
            self._compiled.clear()
        if schema is not None and not isinstance(schema, t.RecordType):
            schema = t.make_schema(schema)
        dataset = Dataset(name=name, format=data_format, path=path,
                          schema=schema, options=options)  # type: ignore[arg-type]
        if schema is None:
            dataset.schema = plugin.infer_schema(dataset)
        self.catalog.register(dataset, replace=True)
        if analyze:
            self.analyze(name)
        self._parsed.clear()
        return dataset

    def unregister(self, name: str) -> None:
        """Remove a dataset, its plug-in state and any caches built from it."""
        if name not in self.catalog:
            return
        dataset = self.catalog.get(name)
        plugin = self.plugins.get(dataset.format)
        if plugin is not None and hasattr(plugin, "invalidate"):
            plugin.invalidate(name)
        if self.cache_manager is not None:
            self.cache_manager.invalidate_dataset(name)
        self.catalog.unregister(name)
        self._compiled.clear()
        self._parsed.clear()

    def analyze(self, name: str) -> None:
        """Collect statistics for a dataset (cardinality, min/max per field)."""
        dataset = self.catalog.get(name)
        plugin = self.plugins[dataset.format]
        self.catalog.set_statistics(name, plugin.collect_statistics(dataset))

    # ------------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------------

    def query(self, text: str | Comprehension) -> QueryResult:
        """Parse, optimize, specialize and execute a query."""
        comprehension = self._to_comprehension(text)
        physical = self._plan(comprehension)
        return self._execute(physical, comprehension)

    def sql(self, text: str) -> QueryResult:
        """Execute a SQL statement."""
        return self.query(text)

    def explain(self, text: str | Comprehension) -> str:
        """Return the physical plan (and generated code, if any) of a query."""
        comprehension = self._to_comprehension(text)
        physical = self._plan(comprehension)
        parts = ["== physical plan ==", physical.pretty()]
        if self.enable_codegen:
            try:
                generated = self.generator.generate(physical)
                parts.extend(["", "== generated code ==", generated.source])
            except CodegenError as exc:
                parts.extend(["", f"(code generation unavailable: {exc}; "
                                  "Volcano interpreter would be used)"])
        return "\n".join(parts)

    # -- pipeline stages -------------------------------------------------------

    def _to_comprehension(self, text: str | Comprehension) -> Comprehension:
        if isinstance(text, Comprehension):
            comprehension = text
        else:
            stripped = text.strip()
            cached = self._parsed.get(stripped)
            if cached is not None:
                return cached
            if stripped.lower().startswith("select"):
                comprehension = parse_sql(stripped)
            elif stripped.lower().startswith("for"):
                comprehension = parse_comprehension(stripped)
            else:
                raise ProteusError(
                    "queries must start with SELECT (SQL) or FOR (comprehension syntax)"
                )
            bound = normalize(bind_comprehension(comprehension, self.catalog.element_types()))
            self._parsed[stripped] = bound
            return bound
        return normalize(bind_comprehension(comprehension, self.catalog.element_types()))

    def _plan(self, comprehension: Comprehension) -> PhysicalPlan:
        logical = translate(comprehension)
        physical = self.planner.plan(logical)
        _validate_output_columns(physical)
        self.last_plan = physical
        return physical

    def _execute(
        self, physical: PhysicalPlan, comprehension: Comprehension
    ) -> QueryResult:
        started = time.perf_counter()
        executed: tuple[list[str], dict[str, Any], ExecutionProfile] | None = None
        if self.enable_codegen:
            try:
                executed = self._execute_generated(physical)
            except (CodegenError, VectorizationError):
                # CodegenError: the generator does not cover the plan shape.
                # VectorizationError: the columnar kernels rejected the data
                # (e.g. keys containing nulls) at run time.  The vectorized
                # tier still gets its attempt — it pre-filters some shapes
                # the generated code feeds to the kernels raw (e.g. NaN probe
                # keys against an integer build side).
                executed = None
        if (
            executed is None
            and self.enable_vectorized
            and self.enable_parallel
            and self.parallel_workers > 1
        ):
            try:
                executed = self._execute_parallel(physical)
            except VectorizationError:
                # The plan or plugin cannot be split into morsels (or the
                # input fits a single morsel); the serial vectorized tier
                # gets its attempt next.
                executed = None
        if executed is None and self.enable_vectorized:
            try:
                executed = self._execute_vectorized(physical)
            except VectorizationError:
                executed = None
        if executed is None:
            executed = self._execute_volcano(physical)
        names, columns, profile = executed
        rows = _columns_to_rows(names, columns)
        rows = _apply_order_and_limit(names, rows, comprehension)
        elapsed = time.perf_counter() - started
        self.last_profile = profile
        return QueryResult(
            columns=names,
            rows=rows,
            execution_seconds=elapsed,
            used_codegen=profile.execution_tier == "codegen",
            tier=profile.execution_tier,
            profile=profile,
        )

    def _execute_generated(
        self, physical: PhysicalPlan
    ) -> tuple[list[str], dict[str, Any], ExecutionProfile]:
        fingerprint = physical.fingerprint()
        generated = self._compiled.get(fingerprint)
        if generated is None:
            generated = self.generator.generate(physical)
            self._compiled[fingerprint] = generated
        self.last_generated_source = generated.source
        runtime = QueryRuntime(self.catalog, self.plugins, self.cache_manager)
        output = generated(runtime)
        names = _output_names(physical)
        runtime.profile.used_generated_code = True
        runtime.profile.execution_tier = "codegen"
        return names, output, runtime.profile

    def _execute_parallel(
        self, physical: PhysicalPlan
    ) -> tuple[list[str], dict[str, Any], ExecutionProfile]:
        executor = ParallelVectorizedExecutor(
            self.catalog,
            self.plugins,
            batch_size=self.vectorized_batch_size,
            num_workers=self.parallel_workers,
            cache_manager=self.cache_manager,
        )
        names, columns = executor.execute(physical)
        profile = ExecutionProfile(
            used_generated_code=False, execution_tier="vectorized-parallel"
        )
        _copy_pipeline_counters(profile, executor.counters)
        profile.parallel_workers = executor.num_workers
        profile.morsels_dispatched = executor.morsels_dispatched
        profile.morsels_stolen = executor.morsels_stolen
        self.last_generated_source = None
        return names, columns, profile

    def _execute_vectorized(
        self, physical: PhysicalPlan
    ) -> tuple[list[str], dict[str, Any], ExecutionProfile]:
        executor = VectorizedExecutor(
            self.catalog,
            self.plugins,
            batch_size=self.vectorized_batch_size,
            cache_manager=self.cache_manager,
        )
        names, columns = executor.execute(physical)
        profile = ExecutionProfile(
            used_generated_code=False, execution_tier="vectorized"
        )
        _copy_pipeline_counters(profile, executor.counters)
        self.last_generated_source = None
        return names, columns, profile

    def _execute_volcano(
        self, physical: PhysicalPlan
    ) -> tuple[list[str], dict[str, Any], ExecutionProfile]:
        executor = VolcanoExecutor(self.catalog, self.plugins)
        names, columns = executor.execute(physical)
        profile = ExecutionProfile(used_generated_code=False, execution_tier="volcano")
        profile.rows_scanned = executor.tuples_processed
        self.last_generated_source = None
        return names, columns, profile

    # ------------------------------------------------------------------------
    # Caching control and introspection
    # ------------------------------------------------------------------------

    def clear_caches(self) -> None:
        if self.cache_manager is not None:
            self.cache_manager.clear()

    def cache_entries(self) -> list:
        return self.cache_manager.entries() if self.cache_manager is not None else []

    @property
    def cache_stats(self):
        return self.cache_manager.stats if self.cache_manager is not None else None

    def structural_index_info(self, name: str) -> dict:
        """Structural-index metadata of a CSV or JSON dataset."""
        dataset = self.catalog.get(name)
        plugin = self.plugins[dataset.format]
        if not hasattr(plugin, "index_info"):
            raise ProteusError(f"dataset {name!r} has no structural index")
        return plugin.index_info(dataset)


# ---------------------------------------------------------------------------
# Result assembly helpers
# ---------------------------------------------------------------------------


def _copy_pipeline_counters(profile: ExecutionProfile, counters) -> None:
    """Mirror a batch executor's pipeline counters into a profile."""
    profile.rows_scanned = counters.rows_scanned
    profile.batches_processed = counters.batches_processed
    profile.values_extracted = counters.values_extracted
    profile.values_from_cache = counters.values_from_cache
    profile.join_build_rows = counters.join_build_rows
    profile.join_output_rows = counters.join_output_rows
    profile.groups_built = counters.groups_built
    profile.output_rows = counters.output_rows


def _output_names(physical: PhysicalPlan) -> list[str]:
    if isinstance(physical, (PhysReduce, PhysNest)):
        return [column.name for column in physical.columns]
    raise ExecutionError("plan root must be Reduce or Nest")


def _validate_output_columns(physical: PhysicalPlan) -> None:
    """Reject plans whose output columns share a name but compute different
    expressions: every executor keys its result columns by name, so one of
    the two would silently shadow the other (e.g. ``SELECT a.id, b.id``
    without aliases)."""
    if not isinstance(physical, (PhysReduce, PhysNest)):
        return
    seen: dict[str, tuple] = {}
    for column in physical.columns:
        fingerprint = column.expression.fingerprint()
        previous = seen.get(column.name)
        if previous is not None and previous != fingerprint:
            raise PlanningError(
                f"duplicate output column name {column.name!r} refers to "
                "different expressions; give each a distinct alias"
            )
        seen[column.name] = fingerprint


def _columns_to_rows(names: Sequence[str], columns: Mapping[str, Any]) -> list[tuple]:
    """Assemble named output columns into result rows.

    Only genuine scalars (aggregate results, literals: plain Python scalars,
    NumPy scalars and 0-d arrays) are broadcast to the row count; a missing
    output column or multi-row columns of differing lengths indicate an
    executor shape bug and raise instead of being papered over.
    """
    values: list[list] = []
    scalars: list[bool] = []
    for name in names:
        if name not in columns:
            raise ExecutionError(
                f"executor produced no output column {name!r}; "
                f"got columns: {sorted(columns)}"
            )
        column = columns[name]
        scalar = False
        if isinstance(column, np.ndarray) and column.ndim == 0:
            column = [column.item()]
            scalar = True
        elif isinstance(column, np.ndarray):
            column = column.tolist()
        elif isinstance(column, np.generic):
            column = [column.item()]
            scalar = True
        elif isinstance(column, (int, float, bool, str)) or column is None:
            column = [column]
            scalar = True
        values.append(list(column))
        scalars.append(scalar)
    row_lengths = {len(column) for column, scalar in zip(values, scalars) if not scalar}
    if len(row_lengths) > 1:
        shapes = ", ".join(
            f"{name}={len(column)}"
            for name, column, scalar in zip(names, values, scalars)
            if not scalar
        )
        raise ExecutionError(f"output columns have mismatched lengths: {shapes}")
    length = row_lengths.pop() if row_lengths else (1 if names else 0)
    normalized = []
    for column, scalar in zip(values, scalars):
        if scalar and length != 1:
            column = column * length
        normalized.append(column)
    rows = [tuple(_output_value(column[i]) for column in normalized) for i in range(length)]
    return rows


def _output_value(value: Any) -> Any:
    """Normalize one result cell: unbox NumPy scalars and surface missing
    values as ``None`` — NaN is only the float *buffers'* encoding of missing
    (see ``types.is_missing``); result rows use ``None`` in every tier."""
    value = _python_value(value)
    return None if t.is_missing(value) else value


def _apply_order_and_limit(
    names: Sequence[str], rows: list[tuple], comprehension: Comprehension
) -> list[tuple]:
    if comprehension.order_by:
        for column, ascending in reversed(comprehension.order_by):
            if column not in names:
                raise ExecutionError(
                    f"ORDER BY column {column!r} is not part of the result "
                    f"projection; output columns: {list(names)}"
                )
            index = list(names).index(column)
            rows = sorted(rows, key=lambda row: (row[index] is None, row[index]),
                          reverse=not ascending)
    if comprehension.limit is not None:
        rows = rows[: comprehension.limit]
    return rows


