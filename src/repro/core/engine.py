"""Public engine API.

:class:`ProteusEngine` is the user-facing entry point of the reproduction.  It
owns the catalog, the input plug-ins, the memory and caching managers, the
optimizer and both executors, and wires them together exactly as Figure 2 of
the paper describes:

1. the query parser (SQL or comprehension syntax) produces a calculus
   expression, which the binder resolves against the catalog,
2. the normalizer and translator rewrite it into the nested relational
   algebra, which the optimizer lowers to a physical plan (selection/
   projection pushdown, join ordering, access-path selection against the
   caches),
3. the plan executes through a four-tier cascade:

   * **codegen** — the code generator collapses the plan into one specialized
     program executed against the query runtime (§5.1, the engine-per-query),
   * **vectorized-parallel** — when ``parallel_workers > 1``, shapes the
     generator does not cover run through the morsel-driven parallel batch
     interpreter: the driving scan splits into batch-aligned morsels that a
     work-stealing worker pool executes concurrently, with partial per-morsel
     aggregation and a deterministic morsel-ordered merge,
   * **vectorized** — the serial batch interpreter serves the same shapes on
     one core (and is the fallback when a scan cannot be split into morsels,
     e.g. the binary row format's per-tuple shim, or when the input fits a
     single morsel),
   * **volcano** — shapes the batch interpreters cannot serve (record
     construction in output columns, outer joins, null group keys) fall back
     to the tuple-at-a-time Volcano interpreter, the paper's "static
     general-purpose engine" baseline.  Unnests — inner *and* outer, nested
     collections included — are batch-native: the plug-ins' offset-vector
     ``scan_unnest_batch`` API keeps them on the fast tiers.

   The ablation flags ``enable_codegen``, ``enable_parallel`` and
   ``enable_vectorized`` disable tiers individually (``enable_vectorized``
   disables both batch tiers); ``ExecutionProfile.execution_tier`` records
   which tier actually served each query, and :meth:`ProteusEngine.explain`
   reports the whole cascade decision for a query without running it.
4. caches are populated as a side effect and reused by later queries — by
   the generated tier *and*, since the parallel subsystem landed, by both
   batch interpreters.

The v2 query API is built around **prepared statements**: the specialization
the paper bets on pays for itself when a query *shape* recurs, so the shape is
made a first-class object.  :meth:`ProteusEngine.prepare` parses, binds and
plans a query containing ``?`` positional / ``:name`` named placeholders once
and returns a :class:`PreparedQuery`; ``pq.execute(7)`` /
``pq.execute(country="CH")`` binds values and runs without re-parsing,
re-planning or re-generating code — the plan fingerprint abstracts parameter
values (``Parameter`` nodes instead of literals), so one compiled program
serves every binding, on every tier.  :meth:`ProteusEngine.query` remains as
sugar for ``prepare(text).execute(*args, **params)`` and keeps its v1
behaviour for literal-only queries.

Results are returned as a lazy columnar :class:`ResultSet`: the executor's
columnar output *is* the backing store — ``column_array`` hands out NumPy
buffers with no rows round-trip, ``rows``/iteration materialize Python tuples
only on first access, and ``fetch_batches`` streams the result in bounded
chunks.  :data:`QueryResult` remains as a deprecated alias.

Parallelism tuning: ``parallel_workers`` defaults to 1 (serial).  Set it to
the number of physical cores for scan-heavy workloads; morsels are 64Ki rows
by default, so inputs of ~128Ki rows or more actually fan out, and smaller
inputs transparently stay on the serial tier where they are faster anyway.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.caching.coalesce import ScanCoalescer, ScanLease
from repro.caching.manager import CacheManager
from repro.caching.matching import field_cache_key
from repro.caching.policies import CachingPolicy, DefaultCachingPolicy, NoCachingPolicy
from repro.core import types as t
from repro.core.types import python_value as _python_value
from repro.core.analysis import (
    NullabilityHints,
    PlanAnalysis,
    SchemaAnalysis,
    TIER_RUNTIME_DEMOTION,
    TIER_VOLCANO,
    TierVerdict,
    analyze_schema,
    tier_verdicts,
)
from repro.core.binder import bind_comprehension
from repro.core.calculus import Comprehension
from repro.core.codegen.generator import CodeGenerator
from repro.core.codegen.runtime import ExecutionProfile, QueryRuntime
from repro.core.comprehension_parser import parse_comprehension
from repro.core.concurrency import make_lock
from repro.core.executor.vectorized import (
    DEFAULT_BATCH_SIZE,
    VectorizedExecutor,
)
from repro.core.executor.volcano import VolcanoExecutor
from repro.core.parallel import ParallelVectorizedExecutor
from repro.core.normalizer import normalize
from repro.core.optimizer.planner import Planner
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.physical import (
    PhysNest,
    PhysReduce,
    PhysScan,
    PhysSort,
    PhysUnnest,
    PhysicalPlan,
    unwrap_sort,
)
from repro.core.sort import resolve_limit, sort_columns
from repro.core.sql_parser import parse_sql
from repro.core.translator import translate
from repro.errors import (
    CodegenError,
    ExecutionError,
    PlanningError,
    ProteusError,
    ResilienceError,
    VectorizationError,
)
from repro.obs.explain import render_explain_analyze
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DEFAULT_TRACE_CAPACITY, TraceBuilder, Tracer
from repro.plugins.base import InputPlugin
from repro.resilience import (
    AdmissionController,
    CancellationToken,
    QueryContext,
    activate_context,
)
from repro.plugins.binary_col_plugin import BinaryColumnPlugin
from repro.plugins.binary_row_plugin import BinaryRowPlugin
from repro.plugins.cache_plugin import CachePlugin
from repro.plugins.csv_plugin import CsvPlugin
from repro.plugins.json_plugin import JsonPlugin
from repro.storage.catalog import Catalog, DataFormat, Dataset
from repro.storage.memory import MemoryManager

#: Parameter-value environment: positional keys are 0-based ints, named keys
#: are strings.
ParamValues = Mapping[int | str, object]


class ResultSet:
    """The lazy, columnar result of a query.

    The executor's columnar output is kept as the backing store:

    * :meth:`column_array` returns the NumPy buffer of one output column with
      no rows round-trip (the float encoding of missing values — NaN — is
      preserved, exactly as the executor produced it),
    * :attr:`rows` / iteration / :meth:`to_dicts` materialize Python row
      tuples lazily, on first access (missing values surface as ``None``),
    * :meth:`fetch_batches` streams the result as bounded chunks of rows
      without ever materializing the full tuple list.

    ``ORDER BY`` and ``LIMIT`` have already been applied — in columnar space —
    by the engine before the :class:`ResultSet` is constructed.
    """

    def __init__(
        self,
        columns: Sequence[str],
        data: Mapping[str, Any] | None = None,
        *,
        length: int | None = None,
        execution_seconds: float = 0.0,
        tier: str | None = None,
        profile: ExecutionProfile | None = None,
        rows: Sequence[tuple] | None = None,
        used_codegen: bool | None = None,  # accepted for v1 compatibility
    ):
        self.columns = list(columns)
        self.execution_seconds = execution_seconds
        if tier is None:
            # v1-style construction: honor an explicit used_codegen flag so
            # the deprecated property reads back what the caller stated.
            tier = "codegen" if used_codegen is None or used_codegen else "volcano"
        #: Which execution tier served the query: "codegen",
        #: "vectorized-parallel", "vectorized" or "volcano".
        self.tier = tier
        self.profile = profile
        self._rows: list[tuple] | None = None
        self._pylists: dict[str, list] = {}
        if data is None:
            # v1-style construction from materialized rows.
            if rows is None:
                raise ExecutionError(
                    "ResultSet requires columnar data (or, for compatibility, rows)"
                )
            self._rows = [tuple(row) for row in rows]
            data = {
                name: [row[index] for row in self._rows]
                for index, name in enumerate(self.columns)
            }
            length = len(self._rows)
        self._data = dict(data)
        if length is None:
            length = len(next(iter(self._data.values()))) if self._data else 0
        self._length = int(length)

    # -- deprecated v1 surface ----------------------------------------------

    @property
    def used_codegen(self) -> bool:
        """Deprecated: use ``.tier == "codegen"`` (or inspect ``.tier``
        directly — it also distinguishes the two batch tiers)."""
        warnings.warn(
            "QueryResult.used_codegen is deprecated; use result.tier "
            "(== 'codegen') instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.tier == "codegen"

    # -- columnar access ----------------------------------------------------

    def _buffer(self, name: str):
        try:
            return self._data[name]
        except KeyError as exc:
            raise ExecutionError(
                f"result has no column {name!r}; columns: {self.columns}"
            ) from exc

    def column_array(self, name: str) -> np.ndarray:
        """The executor's columnar buffer for one output column.

        No row tuples are materialized; float columns keep NaN as their
        missing-value encoding (see :func:`repro.core.types.is_missing`).
        The array is a read-only view: on the codegen tier the buffer may
        alias the engine's adaptive cache, so mutating it would corrupt the
        results of later queries — call ``.copy()`` for a writable array."""
        view = np.asarray(self._buffer(name)).view()
        view.flags.writeable = False
        return view

    def column(self, name: str) -> list:
        """Python values of one output column (missing values as ``None``)."""
        return list(self._python_column(name))

    def _python_column(self, name: str) -> list:
        cached = self._pylists.get(name)
        if cached is None:
            cached = _python_values(self._buffer(name))
            self._pylists[name] = cached
        return cached

    # -- row access (lazy) ---------------------------------------------------

    @property
    def rows(self) -> list[tuple]:
        """The result as Python row tuples, materialized on first access."""
        if self._rows is None:
            if not self.columns:
                self._rows = []
            else:
                lists = [self._python_column(name) for name in self.columns]
                self._rows = list(zip(*lists))
        return self._rows

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def fetch_batches(self, size: int) -> Iterator[list[tuple]]:
        """Yield the result as consecutive chunks of at most ``size`` rows.

        Each chunk is converted from the columnar store independently, so
        consuming a prefix of a large result never materializes the rest.
        """
        if size <= 0:
            raise ExecutionError(f"fetch_batches size must be positive, got {size}")
        if self._rows is not None:
            for start in range(0, len(self._rows), size):
                yield self._rows[start : start + size]
            return
        for start in range(0, self._length, size):
            stop = min(start + size, self._length)
            lists = [
                _python_values(self._buffer(name)[start:stop])
                for name in self.columns
            ]
            yield list(zip(*lists)) if lists else []

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if self._length != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got {self._length} rows x "
                f"{len(self.columns)} columns"
            )
        return self._python_column(self.columns[0])[0]

    def to_dicts(self) -> list[dict[str, Any]]:
        """The result as a list of dicts (one per row)."""
        return [dict(zip(self.columns, row)) for row in self.rows]


#: Deprecated alias of :class:`ResultSet` (the v1 result class name).
QueryResult = ResultSet


class PreparedQuery:
    """A query shape prepared once and executable many times.

    Holds the bound comprehension, the logical plan and the physical plan of
    one query text; ``?`` / ``:name`` placeholders stay abstract
    :class:`~repro.core.expressions.Parameter` nodes, so the physical plan's
    fingerprint — and therefore the engine's compiled-program cache key — is
    shared by every execution regardless of the bound constants.

    :meth:`execute` binds values and runs the cascade directly: no parsing,
    no binding and no code generation happen on the hot path.  The first
    execution with bound values re-runs the *optimizer* once with those
    constants feeding selectivity estimation (join order / build side), then
    the plan is frozen; the compiled-program cache is keyed by plan
    fingerprint, so re-optimization never invalidates compiled artifacts.

    Re-registering (or dropping) datasets invalidates outstanding prepared
    queries: the engine's catalog epoch is checked on every execution and the
    query transparently re-prepares itself against the current catalog — it
    can never serve stale data through a baked-in ``Dataset`` object.

    One PreparedQuery is shared by every thread executing the same query text
    (the engine's per-text prepared cache), so its refresh state — epoch,
    plan, value-optimized flag — lives in a single tuple swapped atomically
    under ``self._lock``: an executing thread snapshots the whole triple in
    one read and can never pair a stale plan with a fresh epoch.
    """

    def __init__(
        self,
        engine: "ProteusEngine",
        source: str | Comprehension,
        comprehension: Comprehension,
        logical,
        plan: PhysicalPlan,
        parameter_keys: Sequence[int | str],
        epoch: int,
    ):
        self._engine = engine
        self._source = source
        self.comprehension = comprehension
        self._logical = logical
        self.parameter_keys = list(parameter_keys)
        self._positional = sorted(
            key for key in self.parameter_keys if isinstance(key, int)
        )
        self._named = {key for key in self.parameter_keys if isinstance(key, str)}
        #: (catalog epoch, physical plan, value-optimized?) — one atomically
        #: rebound triple, written only inside :meth:`_current_plan` under
        #: ``self._lock``, read lock-free as a single snapshot.
        self._state: tuple[int, PhysicalPlan | None, bool] = (epoch, plan, False)
        self._lock = make_lock("PreparedQuery._lock")

    @property
    def plan(self) -> PhysicalPlan | None:
        """The current physical plan (introspection)."""
        return self._state[1]

    @property
    def _plan(self) -> PhysicalPlan | None:
        return self._state[1]

    def _current_plan(self, params: dict | None) -> PhysicalPlan:
        """The plan to execute with, re-preparing against the live catalog
        when the epoch moved (or re-optimizing on the first parameterized
        execution).  The fast path is one lock-free snapshot read; refreshes
        serialize under ``self._lock`` so concurrent executors of this shared
        object never observe a half-written (epoch, plan) pair."""
        engine = self._engine
        epoch, plan, value_optimized = self._state
        if (
            epoch == engine._catalog_epoch
            and plan is not None
            and not (params and not value_optimized)
        ):
            return plan
        with self._lock:
            epoch, plan, value_optimized = self._state
            current_epoch = engine._catalog_epoch
            if epoch != current_epoch:
                # The catalog changed since preparation: transparently
                # re-prepare against the current datasets (or fail the way a
                # fresh query would, e.g. when the dataset was dropped).
                self.comprehension = engine._to_comprehension(self._source)
                self._logical = translate(self.comprehension)
                plan = None
                value_optimized = False
            if plan is None or (params and not value_optimized):
                # First (parameterized) execution: run the optimizer with the
                # bound values feeding selectivity estimation, then freeze
                # the plan.  The compiled-program cache is keyed by the
                # plan's parameter-abstracted fingerprint, so
                # re-optimization can only reuse or add compiled artifacts,
                # never invalidate them.
                plan = engine._plan_logical(
                    self._logical,
                    parameters=params or None,
                    comprehension=self.comprehension,
                )
                if params:
                    value_optimized = True
            self._state = (current_epoch, plan, value_optimized)
            return plan

    @property
    def parameters(self) -> list[int | str]:
        """Parameter keys in first-appearance order (ints for ``?``,
        strings for ``:name``)."""
        return list(self.parameter_keys)

    @property
    def analysis(self) -> PlanAnalysis:
        """The static analysis of this query: inferred output schema
        (dtype + nullability per column), per-tier capability verdicts and
        the nullability hints feeding the executors' fast paths.

        Everything here is computed at prepare time — no data is read."""
        plan = self._current_plan(None)
        schema = self._engine._analyze(plan)
        return PlanAnalysis(
            columns=tuple(schema.columns),
            verdicts=self._engine._verdicts(plan),
            hints=schema.hints,
        )

    def execute(
        self, *args, timeout: float | None = None, cancel=None, **named
    ) -> ResultSet:
        """Bind parameter values and execute.

        Positional values fill ``?`` placeholders in order; keyword values
        fill ``:name`` placeholders.  Every declared parameter must receive
        exactly one value.  ``timeout`` (seconds) overrides the engine's
        default deadline for this call; ``cancel`` attaches a
        :class:`~repro.resilience.CancellationToken` that another thread may
        trip to abort the query cooperatively."""
        return self._engine._execute_prepared(
            self, self._bind(args, named), timeout=timeout, cancel=cancel
        )

    def executemany(self, parameter_sets) -> list[ResultSet]:
        """Execute once per entry of ``parameter_sets``.

        Each entry is a tuple/list (positional), a mapping (named) or a bare
        scalar (single positional parameter); returns one :class:`ResultSet`
        per entry, in order.  All executions share the same compiled program.
        """
        results: list[ResultSet] = []
        for entry in parameter_sets:
            if isinstance(entry, Mapping):
                results.append(
                    self._engine._execute_prepared(self, self._bind_mapping(entry))
                )
            elif isinstance(entry, (tuple, list)):
                results.append(self.execute(*entry))
            else:
                results.append(self.execute(entry))
        return results

    def _bind(self, args: tuple, named: Mapping[str, object]) -> dict:
        if len(args) > len(self._positional):
            raise ProteusError(
                f"query declares {len(self._positional)} positional "
                f"parameter(s), got {len(args)} value(s)"
            )
        params: dict[int | str, object] = dict(enumerate(args))
        for name, value in named.items():
            if name not in self._named:
                declared = sorted(self._named) or ["<none>"]
                raise ProteusError(
                    f"unknown named parameter :{name}; declared named "
                    f"parameters: {declared}"
                )
            params[name] = value
        self._check_complete(params)
        return params

    def _bind_mapping(self, mapping: Mapping) -> dict:
        """Bind a raw key→value mapping (int keys positional, str keys named)."""
        declared = set(self.parameter_keys)
        params: dict[int | str, object] = {}
        for key, value in mapping.items():
            if key not in declared:
                display = f"?{key}" if isinstance(key, int) else f":{key}"
                raise ProteusError(
                    f"unknown parameter {display}; declared parameters: "
                    f"{self.parameter_keys}"
                )
            params[key] = value
        self._check_complete(params)
        return params

    def _check_complete(self, params: Mapping) -> None:
        missing = [key for key in self.parameter_keys if key not in params]
        if missing:
            display = ", ".join(
                f"?{key}" if isinstance(key, int) else f":{key}" for key in missing
            )
            raise ProteusError(f"missing value(s) for parameter(s) {display}")


class ProteusEngine:
    """An analytical query engine over heterogeneous raw data."""

    def __init__(
        self,
        cache_budget_bytes: int = 256 * 1024 * 1024,
        enable_caching: bool = True,
        enable_codegen: bool = True,
        enable_vectorized: bool = True,
        enable_parallel: bool = True,
        parallel_workers: int | None = None,
        enable_join_reordering: bool = True,
        vectorized_batch_size: int = DEFAULT_BATCH_SIZE,
        caching_policy: CachingPolicy | None = None,
        enable_tracing: bool = False,
        enable_metrics: bool = True,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        slow_query_seconds: float | None = 1.0,
        query_timeout_seconds: float | None = None,
        max_concurrent_queries: int | None = None,
        admission_queue_seconds: float = 5.0,
        query_memory_budget_bytes: int | None = None,
        io_retry_budget: int = 16,
        volcano_check_stride: int = 1024,
    ):
        self.memory = MemoryManager(cache_budget_bytes=cache_budget_bytes)
        self.catalog = Catalog()
        self.enable_codegen = enable_codegen
        self.enable_vectorized = enable_vectorized
        #: ``parallel_workers`` is the degree of the morsel-driven parallel
        #: tier; 1 (the default) keeps execution serial.  ``enable_parallel``
        #: is the ablation switch for the tier as a whole.
        self.enable_parallel = enable_parallel
        self.parallel_workers = 1 if parallel_workers is None else max(int(parallel_workers), 1)
        self.vectorized_batch_size = vectorized_batch_size
        self.enable_caching = enable_caching
        policy = caching_policy
        if policy is None:
            policy = DefaultCachingPolicy() if enable_caching else NoCachingPolicy()
        self.cache_manager: CacheManager | None = (
            CacheManager(self.memory.arena, policy) if enable_caching else None
        )
        self.plugins: dict[str, InputPlugin] = {
            DataFormat.CSV: CsvPlugin(self.memory),
            DataFormat.JSON: JsonPlugin(self.memory),
            DataFormat.BINARY_ROW: BinaryRowPlugin(self.memory),
            DataFormat.BINARY_COLUMN: BinaryColumnPlugin(self.memory),
        }
        self.cache_plugin: CachePlugin | None = (
            CachePlugin(self.memory, self.cache_manager, source_plugins=self.plugins)
            if self.cache_manager is not None
            else None
        )
        if self.cache_plugin is not None:
            self.plugins[DataFormat.CACHE] = self.cache_plugin
        #: Cross-query scan sharing (serving layer): concurrent cold scans of
        #: the same registered file coalesce on one in-flight materialization
        #: — one leader parses and populates the field caches, everyone else
        #: waits and re-probes.  Only meaningful with caching enabled (a
        #: waiter piggy-backs through the cache the leader populated).
        self._scan_coalescer: ScanCoalescer | None = (
            ScanCoalescer() if self.cache_manager is not None else None
        )
        self.statistics = StatisticsManager(self.catalog)
        self.planner = Planner(
            self.catalog,
            self.statistics,
            cache_plugin=self.cache_plugin,
            enable_join_reordering=enable_join_reordering,
        )
        self.generator = CodeGenerator(self.catalog, self.plugins, self.cache_plugin)
        #: Guards the four shape caches below and the catalog epoch: the
        #: engine serves concurrent sessions, so every publish into (or bulk
        #: clear of) shared prepare-time state happens under this lock.
        #: Expensive work (parse, plan, codegen) runs *outside* it; winners
        #: are chosen with ``setdefault`` — the double-checked publish
        #: pattern, checked by ``tools/concurrency_lint.py``.
        self._lock = make_lock("ProteusEngine._lock")
        self._compiled: dict[tuple, Any] = {}
        self._parsed: dict[str, Comprehension] = {}
        #: Static-analysis cache keyed by plan fingerprint; entries are
        #: invalidated with the catalog epoch (schemas may change).
        self._analyses: dict[tuple, SchemaAnalysis] = {}
        #: Prepared-query cache backing the ``query()`` sugar (keyed by the
        #: stripped query text); outstanding entries survive catalog changes
        #: because every execution re-validates against ``_catalog_epoch``.
        self._prepared_cache: dict[str, PreparedQuery] = {}
        #: Monotonic counter bumped on every catalog mutation (register,
        #: re-register, unregister, analyze).  PreparedQuery executions
        #: compare against it and transparently re-prepare on mismatch.
        self._catalog_epoch = 0
        #: Introspection of the most recent query.
        self.last_plan: PhysicalPlan | None = None
        self.last_generated_source: str | None = None
        self.last_profile: ExecutionProfile | None = None
        #: Engine-wide metrics registry (queries per tier, decline codes,
        #: latency histogram, cache and plug-in gauges, slow-query log).
        #: Always constructed so scrapes never fail; ``enable_metrics=False``
        #: turns per-query recording into one attribute check.
        self.metrics = MetricsRegistry(enabled=enable_metrics)
        #: Coalesced-scan counter: cold scans that piggy-backed on another
        #: query's in-flight materialization instead of re-parsing the file.
        #: ``None`` with metrics disabled (a disabled registry exports nothing).
        self._scans_coalesced = (
            self.metrics.counter(
                "proteus_scans_coalesced_total",
                "Cold scans served by a concurrent leader's in-flight "
                "materialization instead of a duplicate parse.",
            )
            if self.metrics.enabled
            else None
        )
        #: Span tracer; disabled by default (pay-for-what-you-use — every
        #: instrumentation site reduces to an ``is None`` check).
        self.tracer = Tracer(capacity=trace_capacity, enabled=enable_tracing)
        #: Executions at or above this wall-clock duration land in the
        #: metrics registry's slow-query log; ``None`` disables the log.
        self.slow_query_seconds = slow_query_seconds
        #: Engine-wide default deadline; a per-call ``timeout=`` overrides it.
        #: ``None`` leaves queries unbounded.
        self.query_timeout_seconds = query_timeout_seconds
        #: Transient-I/O retries one query may spend across all its scans
        #: before a :class:`~repro.errors.ScanIOError` surfaces.
        self.io_retry_budget = io_retry_budget
        #: Tuples between deadline/cancellation checks on the Volcano tier
        #: (the batch tiers check per batch / per morsel instead).
        self.volcano_check_stride = volcano_check_stride
        #: Admission controller — built only when a concurrency or memory
        #: bound is configured, so unconfigured engines skip admission
        #: entirely (no lock acquisition on the query path).
        self.admission: AdmissionController | None = None
        if max_concurrent_queries is not None or query_memory_budget_bytes is not None:
            self.admission = AdmissionController(
                max_concurrent=max_concurrent_queries,
                memory_budget_bytes=query_memory_budget_bytes,
                queue_timeout_seconds=admission_queue_seconds,
            )
        self._register_callback_gauges()

    def _register_callback_gauges(self) -> None:
        """Register scrape-time gauges over state the engine already tracks
        (cache manager statistics, per-plug-in scan totals) — no recording
        cost on the query path."""
        if not self.metrics.enabled:
            return
        manager = self.cache_manager
        if manager is not None:
            self.metrics.gauge_callback(
                "proteus_cache_hit_rate",
                lambda: manager.stats.hit_rate,
                "Cache lookup hit rate since engine start.",
            )
            self.metrics.gauge_callback(
                "proteus_cache_lookups",
                lambda: float(manager.stats.lookups),
                "Cache lookups since engine start.",
            )
            self.metrics.gauge_callback(
                "proteus_cache_hits",
                lambda: float(manager.stats.hits),
                "Cache lookup hits since engine start.",
            )
            self.metrics.gauge_callback(
                "proteus_cache_entries",
                lambda: float(len(manager.entries())),
                "Live cache entries.",
            )
            self.metrics.gauge_callback(
                "proteus_cache_used_bytes",
                lambda: float(manager.used_bytes),
                "Bytes of arena memory held by cache entries.",
            )
        coalescer = self._scan_coalescer
        if coalescer is not None:
            self.metrics.gauge_callback(
                "proteus_scans_inflight",
                lambda: float(coalescer.inflight_count),
                "Cold-scan materializations currently led by some query "
                "(concurrent arrivals coalesce on them).",
            )
        admission = self.admission
        if admission is not None:
            self.metrics.gauge_callback(
                "proteus_admission_active",
                lambda: float(admission.active),
                "Queries currently holding an admission slot.",
            )
            self.metrics.gauge_callback(
                "proteus_admission_reserved_bytes",
                lambda: float(admission.reserved_bytes),
                "Bytes reserved against the admission memory budget.",
            )
            self.metrics.gauge_callback(
                "proteus_admission_admitted_total",
                lambda: float(admission.admitted_total),
                "Queries admitted since engine start.",
            )
            self.metrics.gauge_callback(
                "proteus_admission_rejected_total",
                lambda: float(admission.rejected_total),
                "Queries rejected by admission control (RES003/RES004).",
            )
        plugins = list(self.plugins.values())
        self.metrics.gauge_callback(
            "proteus_plugin_scan_seconds",
            lambda: {p.format_name: p.scan_seconds for p in plugins},
            "Wall-clock seconds spent inside plug-in scan calls.",
            callback_label="format",
        )
        self.metrics.gauge_callback(
            "proteus_plugin_scan_bytes",
            lambda: {p.format_name: float(p.scan_bytes) for p in plugins},
            "Bytes of column buffers produced by plug-in scan calls.",
            callback_label="format",
        )
        self.metrics.gauge_callback(
            "proteus_plugin_scan_calls",
            lambda: {p.format_name: float(p.scan_calls) for p in plugins},
            "Plug-in scan calls (one per materialized buffer stream).",
            callback_label="format",
        )

    # ------------------------------------------------------------------------
    # Dataset registration
    # ------------------------------------------------------------------------

    def register_csv(
        self,
        name: str,
        path: str,
        schema: t.RecordType | Mapping | None = None,
        delimiter: str = ",",
        has_header: bool = True,
        stride: int = 5,
        analyze: bool = False,
    ) -> Dataset:
        """Register a raw CSV file as a queryable dataset."""
        options = {"delimiter": delimiter, "has_header": has_header, "stride": stride}
        return self._register(name, DataFormat.CSV, path, schema, options, analyze)

    def register_json(
        self,
        name: str,
        path: str,
        schema: t.RecordType | Mapping | None = None,
        sample_size: int = 50,
        analyze: bool = False,
    ) -> Dataset:
        """Register a raw JSON object stream as a queryable dataset."""
        options = {"sample_size": sample_size}
        return self._register(name, DataFormat.JSON, path, schema, options, analyze)

    def register_binary_columns(
        self, name: str, directory: str, analyze: bool = True
    ) -> Dataset:
        """Register a binary column table (directory of column files)."""
        return self._register(name, DataFormat.BINARY_COLUMN, directory, None, {}, analyze)

    def register_binary_rows(self, name: str, path: str, analyze: bool = True) -> Dataset:
        """Register a binary row table."""
        return self._register(name, DataFormat.BINARY_ROW, path, None, {}, analyze)

    def _register(
        self,
        name: str,
        data_format: str,
        path: str,
        schema: t.RecordType | Mapping | None,
        options: dict,
        analyze: bool,
    ) -> Dataset:
        plugin = self.plugins[data_format]
        if name in self.catalog:
            # Re-registration under an existing name: drop the old plug-in
            # state, any caches built from the previous data and every
            # compiled program (they bake Dataset objects in as constants),
            # exactly as ``unregister`` would — otherwise a compiled program
            # or cache entry from the old path/schema could serve stale
            # results.  A brand-new name cannot affect existing programs.
            old = self.catalog.get(name)
            old_plugin = self.plugins.get(old.format)
            if old_plugin is not None and hasattr(old_plugin, "invalidate"):
                old_plugin.invalidate(name)
            if self.cache_manager is not None:
                self.cache_manager.invalidate_dataset(name)
            with self._lock:
                self._compiled.clear()
        if schema is not None and not isinstance(schema, t.RecordType):
            schema = t.make_schema(schema)
        dataset = Dataset(name=name, format=data_format, path=path,
                          schema=schema, options=options)  # type: ignore[arg-type]
        if schema is None:
            dataset.schema = plugin.infer_schema(dataset)
        self.catalog.register(dataset, replace=True)
        if analyze:
            self.analyze(name)
        with self._lock:
            self._parsed.clear()
            self._prepared_cache.clear()
            self._analyses.clear()
            # Any catalog change invalidates outstanding PreparedQuery objects
            # (their plans may bake stale Dataset objects or, for a brand-new
            # name, resolve unqualified columns differently); they
            # transparently re-prepare on their next execution.
            self._catalog_epoch += 1
        return dataset

    def unregister(self, name: str) -> None:
        """Remove a dataset, its plug-in state and any caches built from it."""
        if name not in self.catalog:
            return
        dataset = self.catalog.get(name)
        plugin = self.plugins.get(dataset.format)
        if plugin is not None and hasattr(plugin, "invalidate"):
            plugin.invalidate(name)
        if self.cache_manager is not None:
            self.cache_manager.invalidate_dataset(name)
        self.catalog.unregister(name)
        with self._lock:
            self._compiled.clear()
            self._parsed.clear()
            self._prepared_cache.clear()
            self._analyses.clear()
            self._catalog_epoch += 1

    def analyze(self, name: str) -> None:
        """Collect statistics for a dataset (cardinality, min/max per field)."""
        dataset = self.catalog.get(name)
        plugin = self.plugins[dataset.format]
        self.catalog.set_statistics(name, plugin.collect_statistics(dataset))
        # Fresh statistics can change join orders; let prepared plans refresh.
        with self._lock:
            self._analyses.clear()
            self._catalog_epoch += 1

    # ------------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------------

    def prepare(self, text: str | Comprehension) -> PreparedQuery:
        """Parse, bind and plan a query once, returning a reusable
        :class:`PreparedQuery`.

        ``?`` (positional) and ``:name`` (named) placeholders may appear
        anywhere a scalar expression is allowed, in both SQL and the
        comprehension syntax.  Execution binds values without re-parsing or
        re-generating code; on a repeated shape the whole frontend cost —
        parse, bind, normalize, translate, plan, codegen — is paid once.
        """
        try:
            comprehension = self._to_comprehension(text)
            logical = translate(comprehension)
            physical = self._plan_logical(logical, comprehension=comprehension)
        except ProteusError as exc:
            # Prepare-time failures (parse, bind, TYP analysis, planning)
            # count as failed queries too — same counter, keyed by code.
            self._count_query_failure(exc)
            raise
        self.last_plan = physical
        return PreparedQuery(
            self,
            text,
            comprehension,
            logical,
            physical,
            comprehension.parameters(),
            self._catalog_epoch,
        )

    def query(
        self,
        text: str | Comprehension,
        *args,
        timeout: float | None = None,
        cancel: CancellationToken | None = None,
        **params,
    ) -> ResultSet:
        """Execute a query: sugar for ``prepare(text).execute(*args, **params)``.

        Prepared queries are cached per query text, so repeated ``query()``
        calls with the same text (and varying parameter values) reuse one
        plan and one compiled program.

        ``timeout`` overrides the engine's ``query_timeout_seconds`` for this
        call; ``cancel`` attaches a :class:`~repro.resilience.CancellationToken`
        another thread may trip.  (A named query parameter literally called
        ``:timeout`` or ``:cancel`` must be bound through
        ``prepare(...).executemany([{...}])`` instead.)
        """
        return self._prepare_cached(text).execute(
            *args, timeout=timeout, cancel=cancel, **params
        )

    def sql(self, text: str, *args, **params) -> ResultSet:
        """Execute a SQL statement."""
        return self.query(text, *args, **params)

    def explain(
        self, text: str | Comprehension, *args, analyze: bool = False, **params
    ) -> str:
        """The physical plan, generated code and tier-cascade decision of a
        query, without executing it.

        With ``analyze=True`` the query *is* executed (under forced tracing;
        parameter values may be passed like :meth:`query`) and the plan tree
        is rendered with actual per-operator time and row counts next to the
        optimizer's estimates, plus the predicted-vs-served tier.
        """
        if analyze:
            return self._explain_analyze(text, args, params)
        comprehension = self._to_comprehension(text)
        physical = self._plan(comprehension)
        analysis = self._analyze(physical)
        verdicts = self._verdicts(physical)
        parts = ["== physical plan ==", physical.pretty()]
        if analysis.columns:
            parts.extend(["", "== inferred output schema =="])
            parts.extend(f"  {info.render()}" for info in analysis.columns)
        unnests = [
            node for node in physical.walk() if isinstance(node, PhysUnnest)
        ]
        if unnests:
            parts.extend(["", "== unnest strategy =="])
            for node in unnests:
                mode, why = node.planned_mode()
                kind = "outer" if node.outer else "inner"
                parts.append(
                    f"{node.var} <- {node.binding}.{'.'.join(node.path)} "
                    f"({kind}): {mode} -- {why}"
                )
            parts.append(
                "(batch-native: parent columns broadcast with one np.repeat "
                "per batch; outer unnest emits a null child row for empty "
                "collections)"
            )
        if isinstance(physical, PhysSort):
            strategy, why = physical.planned_strategy()
            parts.extend(
                [
                    "",
                    "== sort strategy ==",
                    f"{strategy}: {why}",
                    "(execution refines the choice per key dtype: object "
                    "columns fall back to the boxed comparator, and the "
                    "parallel tier merges per-morsel sorted runs)",
                ]
            )
        codegen_verdict = verdicts[0]
        codegen_reason: str | None = None
        generated = None
        if not codegen_verdict.serves:
            codegen_reason = codegen_verdict.reason
        else:
            try:
                generated = self.generator.generate(unwrap_sort(physical))
            except CodegenError as exc:
                # Static verdict / generator drift: surface the generator's
                # own wording rather than hiding the decline.
                codegen_reason = str(exc)
        if generated is not None:
            parts.extend(["", "== generated code ==", generated.source])
        elif self.enable_codegen:
            parts.extend(["", f"(code generation unavailable: {codegen_reason}; "
                              "a fallback tier would serve the query, see the "
                              "tier cascade below)"])
        parts.extend(["", "== tier cascade =="])
        selected = False
        for verdict in verdicts:
            if verdict.serves and not selected:
                parts.append(f"{verdict.tier}: serves this plan  <- selected")
                selected = True
            elif verdict.serves:
                parts.append(
                    f"{verdict.tier}: would serve if the tiers above declined"
                )
            else:
                parts.append(
                    f"{verdict.tier}: declines -- {verdict.reason} "
                    f"[{verdict.code}]"
                )
        parts.append(
            "(note: run-time data conditions, e.g. null join or group keys, "
            "can still demote a batch tier to volcano during execution)"
        )
        return "\n".join(parts)

    def _explain_analyze(
        self, text: str | Comprehension, args: tuple, params: dict
    ) -> str:
        """Execute under forced tracing and render estimated-vs-actual."""
        with self.tracer.force():
            prepared = self.prepare(text)
            result = prepared.execute(*args, **params)
        plan = prepared._plan
        if plan is None:  # pragma: no cover - execute() always plans
            raise ProteusError("explain(analyze=True) produced no plan")
        return render_explain_analyze(
            plan,
            self.tracer.last(),
            result.profile,
            self.statistics,
            len(result),
            result.execution_seconds,
        )

    # -- pipeline stages -------------------------------------------------------

    def _prepare_cached(self, text: str | Comprehension) -> PreparedQuery:
        if isinstance(text, Comprehension):
            return self.prepare(text)
        key = text.strip()
        prepared = self._prepared_cache.get(key)
        if prepared is None:
            # Prepare outside the lock (parse + plan are the expensive part);
            # concurrent first callers race to prepare, one publication wins
            # and every thread shares the winner.
            prepared = self.prepare(text)
            with self._lock:
                prepared = self._prepared_cache.setdefault(key, prepared)
        return prepared

    def _to_comprehension(self, text: str | Comprehension) -> Comprehension:
        started = time.perf_counter()
        try:
            return self._to_comprehension_inner(text)
        finally:
            self.tracer.record_phase("parse", time.perf_counter() - started)

    def _to_comprehension_inner(self, text: str | Comprehension) -> Comprehension:
        if isinstance(text, Comprehension):
            comprehension = text
        else:
            stripped = text.strip()
            cached = self._parsed.get(stripped)
            if cached is not None:
                return cached
            if stripped.lower().startswith("select"):
                comprehension = parse_sql(stripped)
            elif stripped.lower().startswith("for"):
                comprehension = parse_comprehension(stripped)
            else:
                raise ProteusError(
                    "queries must start with SELECT (SQL) or FOR (comprehension syntax)"
                )
            bound = normalize(bind_comprehension(comprehension, self.catalog.element_types()))
            with self._lock:
                bound = self._parsed.setdefault(stripped, bound)
            return bound
        return normalize(bind_comprehension(comprehension, self.catalog.element_types()))

    def _plan_logical(
        self,
        logical,
        parameters: ParamValues | None = None,
        comprehension: Comprehension | None = None,
    ) -> PhysicalPlan:
        order_by = comprehension.order_by if comprehension is not None else None
        limit = comprehension.limit if comprehension is not None else None
        started = time.perf_counter()
        physical = self.planner.plan(
            logical, parameters=parameters, order_by=order_by, limit=limit
        )
        self.tracer.record_phase("plan", time.perf_counter() - started)
        _validate_output_columns(physical)
        # Static analysis runs at prepare time: unknown fields referenced
        # through nested paths, mixed-type comparisons and invalid aggregate
        # inputs surface here as AnalysisError instead of surfacing as raw
        # KeyErrors (or worse, silently wrong masks) during execution.
        started = time.perf_counter()
        self._analyze(physical)
        self.tracer.record_phase("analyze", time.perf_counter() - started)
        return physical

    def _analyze(self, physical: PhysicalPlan) -> SchemaAnalysis:
        """Type/nullability analysis of a plan, cached per fingerprint."""
        fingerprint = physical.fingerprint()
        cached = self._analyses.get(fingerprint)
        if cached is None:
            cached = analyze_schema(physical, self.catalog)
            with self._lock:
                cached = self._analyses.setdefault(fingerprint, cached)
        return cached

    def _verdicts(self, physical: PhysicalPlan) -> tuple[TierVerdict, ...]:
        """Static tier-capability verdicts under this engine's configuration."""
        return tier_verdicts(
            physical,
            enable_codegen=self.enable_codegen,
            enable_vectorized=self.enable_vectorized,
            enable_parallel=self.enable_parallel,
            parallel_workers=self.parallel_workers,
            catalog=self.catalog,
            plugins=self.plugins,
            cache_manager=self.cache_manager,
            batch_size=self.vectorized_batch_size,
        )

    def _plan(
        self, comprehension: Comprehension, parameters: ParamValues | None = None
    ) -> PhysicalPlan:
        physical = self._plan_logical(
            translate(comprehension), parameters, comprehension=comprehension
        )
        self.last_plan = physical
        return physical

    def _execute_prepared(
        self,
        prepared: PreparedQuery,
        params: dict,
        timeout: float | None = None,
        cancel: CancellationToken | None = None,
    ) -> ResultSet:
        plan = prepared._current_plan(params)
        self.last_plan = plan
        query_text = (
            prepared._source if isinstance(prepared._source, str) else None
        )
        return self._execute(
            plan, params or None, query_text=query_text,
            timeout=timeout, cancel=cancel,
        )

    def _execute(
        self,
        physical: PhysicalPlan,
        params: ParamValues | None = None,
        query_text: str | None = None,
        timeout: float | None = None,
        cancel: CancellationToken | None = None,
    ) -> ResultSet:
        started = time.perf_counter()
        # One QueryContext per execution, always — unconfigured engines get a
        # passive context (no deadline, no token) whose checks are a couple of
        # attribute loads, so the resilience plumbing has one code path.
        effective_timeout = (
            self.query_timeout_seconds if timeout is None else timeout
        )
        context = QueryContext(
            timeout_seconds=effective_timeout,
            token=cancel,
            retry_budget=self.io_retry_budget,
            volcano_stride=self.volcano_check_stride,
        )
        slot = None
        if self.admission is not None:
            try:
                slot = self.admission.admit(
                    self._estimate_query_bytes(physical), query_text=query_text
                )
            except ResilienceError as exc:
                self._record_query_failure(
                    query_text, exc, time.perf_counter() - started, None
                )
                raise
        trace = self.tracer.begin(query_text or "<plan>", physical)
        leases: list[ScanLease] = []
        try:
            # Cross-query scan sharing: lead or join the in-flight cold
            # scans this plan touches.  Runs after admission (the front
            # door) and inside the abort handling below, because a
            # coalesced wait honours the deadline/cancellation checks.
            if self._scan_coalescer is not None:
                leases = self._coalesce_cold_scans(physical, context)
            # The context is published thread-locally so code that cannot
            # take a parameter (plug-in I/O deep inside a generated program)
            # still finds the retry budget and deadline; the worker pool
            # re-publishes it on its own threads.
            with activate_context(context):
                return self._execute_with_context(
                    physical, params, query_text, started, context, trace
                )
        except ProteusError as exc:
            # Any failure mid-execution — deadline, cancellation, exhausted
            # retries, or an ordinary execution error — lands here after the
            # executors unwound (pool drained, no worker leaked).  Record an
            # abort profile carrying the partial-progress counters so callers
            # and the trace see how far the query got.
            elapsed = time.perf_counter() - started
            code = _failure_code(exc)
            profile = ExecutionProfile(
                used_generated_code=False, execution_tier="aborted"
            )
            profile.aborted = code
            profile.io_retries = context.io_retries
            profile.partial_progress = context.progress_snapshot()
            self.last_profile = profile
            # Callers that cannot consult last_profile without racing other
            # sessions (the HTTP serving layer) read the abort profile —
            # and its partial_progress — straight off the exception.
            exc.profile = profile
            finished_trace = (
                self.tracer.finish(trace, profile, elapsed, aborted=code)
                if trace is not None
                else None
            )
            self._record_query_failure(query_text, exc, elapsed, finished_trace)
            raise
        finally:
            # Leases first: the leader's materializations are already
            # stored, so waiters waking here go straight to a warm cache.
            for lease in leases:
                lease.release()
            if slot is not None:
                slot.release()

    #: Bounded leader-retry rounds for one coalesced scan: a waiter that
    #: wakes to a still-cold cache (the leader failed, or the policy declined
    #: to store) re-bids for leadership this many times before giving up and
    #: scanning uncoalesced — coalescing is an optimization, never a gate.
    _MAX_COALESCE_ROUNDS = 8

    def _coalesce_cold_scans(
        self, physical: PhysicalPlan, context: QueryContext
    ) -> list[ScanLease]:
        """Lead or join the in-flight materialization of every *cold* raw
        scan in ``physical``; returns the leases this query must release
        (in ``_execute``'s ``finally``) after its execution stored them.

        A scan is coalescable when its dataset's format would actually be
        cached by the policy (verbose sources — JSON, CSV; binary sources
        are cheap to re-scan and the default policy never caches them) and
        at least one of its field columns is missing from the cache.
        Datasets are acquired in sorted order so two queries covering the
        same datasets can never deadlock waiting on each other's leases.
        """
        manager = self.cache_manager
        coalescer = self._scan_coalescer
        leases: list[ScanLease] = []
        if manager is None or coalescer is None:
            return leases
        cold: dict[str, list[tuple]] = {}
        for node in physical.walk():
            if not isinstance(node, PhysScan) or node.access_path != "raw":
                continue
            if node.dataset in cold or not node.paths:
                continue
            try:
                dataset = self.catalog.get(node.dataset)
            except ProteusError:
                continue
            if not manager.policy.should_cache_field(dataset.format, "float"):
                continue
            keys = [field_cache_key(dataset.name, path) for path in node.paths]
            if any(manager.peek(key) is None for key in keys):
                cold[dataset.name] = keys
        for name in sorted(cold):
            keys = cold[name]
            for _ in range(self._MAX_COALESCE_ROUNDS):
                lease = coalescer.acquire(name, context)
                if lease is not None:
                    leases.append(lease)
                    break
                # A leader just finished: if its materialization warmed our
                # columns, piggy-back on it and skip the raw parse.
                if all(manager.peek(key) is not None for key in keys):
                    if self._scans_coalesced is not None:
                        self._scans_coalesced.inc(dataset=name)
                    break
        return leases

    def _execute_with_context(
        self,
        physical: PhysicalPlan,
        params: ParamValues | None,
        query_text: str | None,
        started: float,
        context: QueryContext,
        trace: TraceBuilder | None,
    ) -> ResultSet:
        # Resolve a parameterized LIMIT up front: literal and bound values go
        # through the same validation (negative limits are rejected in both).
        sort_plan = physical if isinstance(physical, PhysSort) else None
        bound_limit = (
            resolve_limit(sort_plan.limit, params) if sort_plan is not None else None
        )
        cascade_started = time.perf_counter()
        analysis = self._analyze(physical)
        verdicts = self._verdicts(physical)
        predicted_tier = next(
            (v.tier for v in verdicts if v.serves), TIER_VOLCANO
        )
        decline_reasons = {
            v.tier: f"[{v.code}] {v.reason}" for v in verdicts if not v.serves
        }
        if trace is not None:
            trace.add_phase(
                "tier-cascade", time.perf_counter() - cascade_started
            )
        execute_started = time.perf_counter()
        executed: tuple[list[str], dict[str, Any], ExecutionProfile] | None = None
        for verdict in verdicts:
            if not verdict.serves:
                # Statically declined: the capability table predicts the
                # executor's own rejection, so skip the attempt entirely.
                continue
            if verdict.tier == TIER_VOLCANO:
                break
            try:
                if verdict.tier == "codegen":
                    executed = self._execute_generated(
                        physical, params, trace, context
                    )
                elif verdict.tier == "vectorized-parallel":
                    executed = self._execute_parallel(
                        physical, params, analysis.hints, trace, context
                    )
                else:
                    executed = self._execute_vectorized(
                        physical, params, analysis.hints, trace, context
                    )
                break
            except (CodegenError, VectorizationError) as exc:
                # A data-dependent demotion the static analysis cannot rule
                # out — e.g. null group/join keys, or NaN probe keys against
                # an integer build side.  Record it so explain()/profile
                # users see why the observed tier differs from the verdict.
                decline_reasons[verdict.tier] = (
                    f"[{TIER_RUNTIME_DEMOTION}] runtime demotion: {exc}"
                )
        if executed is None:
            executed = self._execute_volcano(physical, params, trace, context)
        execute_seconds = time.perf_counter() - execute_started
        names, columns, profile = executed
        profile.predicted_tier = predicted_tier
        profile.tier_decline_reasons = decline_reasons
        profile.io_retries = context.io_retries
        if trace is not None:
            trace.add_phase("execute", execute_seconds)
            if profile.execution_tier != "codegen":
                # Reduce/Nest run inside the executor sinks without a stage
                # of their own; attribute the executor call to the plan root.
                # The codegen tier records its own root kernel spans.
                root = unwrap_sort(physical)
                trace.operator(
                    type(root).__name__.removeprefix("Phys").lower(),
                    node=root,
                    inclusive=True,
                    detail="engine-side root span; time covers the executor call",
                ).add(seconds=execute_seconds, rows_out=profile.output_rows)
        materialize_started = time.perf_counter()
        length, data = _normalize_result_columns(names, columns)
        if sort_plan is not None and profile.sort_strategy is None:
            # The tier materialized the unsorted output (codegen / volcano /
            # a batch tier that left the epilogue to the engine): run the
            # columnar sort kernels here, one permutation, no row boxing.
            rows_in = length
            sort_started = time.perf_counter()
            length, data, strategy = sort_columns(
                names,
                length,
                data,
                sort_plan.keys,
                bound_limit,
                analysis.hints.non_null_columns,
            )
            if trace is not None:
                trace.operator(
                    "sort",
                    node=sort_plan,
                    detail="engine-side columnar sort epilogue",
                ).add(
                    seconds=time.perf_counter() - sort_started,
                    rows_in=rows_in,
                    rows_out=length,
                )
            if strategy is not None:
                profile.sort_strategy = strategy
                if bound_limit != 0:
                    # LIMIT 0 short-circuits without running a kernel; no
                    # rows entered a sort.
                    profile.rows_sorted += rows_in
        if trace is not None:
            trace.add_phase(
                "materialize", time.perf_counter() - materialize_started
            )
        elapsed = time.perf_counter() - started
        self.last_profile = profile
        finished_trace = (
            self.tracer.finish(trace, profile, elapsed)
            if trace is not None
            else None
        )
        self._record_query_metrics(
            query_text, profile, decline_reasons, elapsed, length, finished_trace
        )
        return ResultSet(
            columns=names,
            data=data,
            length=length,
            execution_seconds=elapsed,
            tier=profile.execution_tier,
            profile=profile,
        )

    def _record_query_metrics(
        self,
        query_text: str | None,
        profile: ExecutionProfile,
        decline_reasons: Mapping[str, str],
        elapsed: float,
        result_rows: int,
        trace,
    ) -> None:
        metrics = self.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "proteus_queries_total", "Queries executed, by serving tier."
        ).inc(tier=profile.execution_tier)
        metrics.histogram(
            "proteus_query_seconds", "End-to-end query latency."
        ).observe(elapsed)
        metrics.counter(
            "proteus_rows_returned_total", "Result rows returned to callers."
        ).inc(result_rows)
        declines = metrics.counter(
            "proteus_tier_declines_total",
            "Tier declines, by tier and verdict code.",
        )
        for tier, reason in decline_reasons.items():
            code = reason.partition("]")[0].lstrip("[") or "unknown"
            declines.inc(tier=tier, code=code)
        if profile.execution_tier == "codegen":
            metrics.counter(
                "proteus_codegen_compilations_total",
                "Generated-program executions, by program-cache outcome.",
            ).inc(outcome="cache-hit" if profile.compiled_from_cache else "fresh")
        if profile.io_retries:
            metrics.counter(
                "proteus_io_retries_total",
                "Transient raw-data I/O failures recovered by retrying.",
            ).inc(profile.io_retries)
        if profile.parallel_workers > 1:
            metrics.counter(
                "proteus_morsels_dispatched_total",
                "Morsels dispatched to the parallel worker pool.",
            ).inc(profile.morsels_dispatched)
            metrics.counter(
                "proteus_morsels_stolen_total",
                "Morsels served off another worker's queue.",
            ).inc(profile.morsels_stolen)
        threshold = self.slow_query_seconds
        if threshold is not None and elapsed >= threshold:
            entry: dict[str, Any] = {
                "query": query_text or "<plan>",
                "tier": profile.execution_tier,
                "seconds": elapsed,
                "rows": result_rows,
            }
            if trace is not None:
                entry["trace"] = trace.to_dict()
            metrics.record_slow_query(entry)

    def _count_query_failure(self, exc: BaseException) -> None:
        if not self.metrics.enabled:
            return
        self.metrics.counter(
            "proteus_queries_failed_total",
            "Failed queries, by error code (TYP/TIER/RES/internal).",
        ).inc(code=_failure_code(exc))

    def _record_query_failure(
        self,
        query_text: str | None,
        exc: BaseException,
        elapsed: float,
        trace,
    ) -> None:
        """Metrics for a failed execution: the failure counter keyed by error
        code, the shared latency histogram (failed queries spent wall-clock
        too — a query that burned its whole deadline must show up in the
        tail) and the slow-query log."""
        metrics = self.metrics
        if not metrics.enabled:
            return
        self._count_query_failure(exc)
        metrics.histogram(
            "proteus_query_seconds", "End-to-end query latency."
        ).observe(elapsed)
        threshold = self.slow_query_seconds
        if threshold is not None and elapsed >= threshold:
            entry: dict[str, Any] = {
                "query": query_text or "<plan>",
                "tier": "aborted",
                "seconds": elapsed,
                "rows": 0,
                "error": str(exc),
            }
            if trace is not None:
                entry["trace"] = trace.to_dict()
            metrics.record_slow_query(entry)

    def _estimate_query_bytes(self, physical: PhysicalPlan) -> int:
        """Admission-control memory estimate: for each scanned dataset,
        cardinality × referenced columns × 8 bytes (one float64-sized buffer
        per column).  Deliberately crude — it only has to rank queries well
        enough for the byte budget to keep a runaway scan from starving the
        rest; datasets without collected statistics contribute nothing, so
        admission degrades to the pure concurrency bound for them."""
        total = 0
        for node in physical.walk():
            if not isinstance(node, PhysScan):
                continue
            try:
                dataset = self.catalog.get(node.dataset)
            except ProteusError:
                continue
            statistics = dataset.statistics
            if statistics is None:
                continue
            columns = max(len(node.paths), 1)
            total += int(statistics.cardinality) * columns * 8
        return total

    def _execute_generated(
        self,
        physical: PhysicalPlan,
        params: ParamValues | None = None,
        trace: TraceBuilder | None = None,
        context: QueryContext | None = None,
    ) -> tuple[list[str], dict[str, Any], ExecutionProfile]:
        # A root PhysSort is executed by the engine's columnar sort kernels on
        # the program's output; the program itself covers the child plan, so
        # one compiled artifact serves every ORDER BY / LIMIT variation of the
        # same shape (the cache is keyed by the generated plan's fingerprint).
        target = unwrap_sort(physical)
        fingerprint = target.fingerprint()
        generated = self._compiled.get(fingerprint)
        from_cache = generated is not None
        if generated is None:
            codegen_started = time.perf_counter()
            generated = self.generator.generate(target)
            self.tracer.record_phase(
                "codegen", time.perf_counter() - codegen_started
            )
            # Concurrent cold executions of one shape race to generate; the
            # first publication wins so every thread runs the same program.
            with self._lock:
                generated = self._compiled.setdefault(fingerprint, generated)
        self.last_generated_source = generated.source
        runtime = QueryRuntime(
            self.catalog, self.plugins, self.cache_manager, params=params,
            trace=trace, context=context,
        )
        output = generated(runtime)
        names = _output_names(target)
        runtime.profile.used_generated_code = True
        runtime.profile.execution_tier = "codegen"
        runtime.profile.compiled_from_cache = from_cache
        return names, output, runtime.profile

    def _execute_parallel(
        self,
        physical: PhysicalPlan,
        params: ParamValues | None = None,
        hints: NullabilityHints | None = None,
        trace: TraceBuilder | None = None,
        context: QueryContext | None = None,
    ) -> tuple[list[str], dict[str, Any], ExecutionProfile]:
        executor = ParallelVectorizedExecutor(
            self.catalog,
            self.plugins,
            batch_size=self.vectorized_batch_size,
            num_workers=self.parallel_workers,
            cache_manager=self.cache_manager,
            params=params,
            hints=hints,
            trace=trace,
            context=context,
        )
        names, columns = executor.execute(physical)
        profile = ExecutionProfile(
            used_generated_code=False, execution_tier="vectorized-parallel"
        )
        _copy_pipeline_counters(profile, executor.counters)
        profile.sort_strategy = executor.sort_strategy
        profile.parallel_workers = executor.num_workers
        profile.morsels_dispatched = executor.morsels_dispatched
        profile.morsels_stolen = executor.morsels_stolen
        self.last_generated_source = None
        return names, columns, profile

    def _execute_vectorized(
        self,
        physical: PhysicalPlan,
        params: ParamValues | None = None,
        hints: NullabilityHints | None = None,
        trace: TraceBuilder | None = None,
        context: QueryContext | None = None,
    ) -> tuple[list[str], dict[str, Any], ExecutionProfile]:
        executor = VectorizedExecutor(
            self.catalog,
            self.plugins,
            batch_size=self.vectorized_batch_size,
            cache_manager=self.cache_manager,
            params=params,
            hints=hints,
            trace=trace,
            context=context,
        )
        names, columns = executor.execute(physical)
        profile = ExecutionProfile(
            used_generated_code=False, execution_tier="vectorized"
        )
        _copy_pipeline_counters(profile, executor.counters)
        profile.sort_strategy = executor.sort_strategy
        self.last_generated_source = None
        return names, columns, profile

    def _execute_volcano(
        self,
        physical: PhysicalPlan,
        params: ParamValues | None = None,
        trace: TraceBuilder | None = None,
        context: QueryContext | None = None,
    ) -> tuple[list[str], dict[str, Any], ExecutionProfile]:
        executor = VolcanoExecutor(
            self.catalog, self.plugins, params=params, trace=trace,
            context=context,
        )
        # The engine's sort kernels run on the materialized output; the
        # interpreter never sees the PhysSort root.
        names, columns = executor.execute(unwrap_sort(physical))
        profile = ExecutionProfile(used_generated_code=False, execution_tier="volcano")
        # The interpreter counts the same things the batch tiers count (see
        # the differential suite); ``tuples_processed`` keeps its historical
        # post-predicate semantics for the interpretation-overhead reports.
        profile.rows_scanned = executor.rows_scanned
        profile.unnest_output_rows = executor.unnest_output_rows
        profile.output_rows = executor.output_rows
        self.last_generated_source = None
        return names, columns, profile

    # ------------------------------------------------------------------------
    # Caching control and introspection
    # ------------------------------------------------------------------------

    def clear_caches(self) -> None:
        if self.cache_manager is not None:
            self.cache_manager.clear()

    def cache_entries(self) -> list:
        return self.cache_manager.entries() if self.cache_manager is not None else []

    @property
    def cache_stats(self):
        return self.cache_manager.stats if self.cache_manager is not None else None

    def structural_index_info(self, name: str) -> dict:
        """Structural-index metadata of a CSV or JSON dataset."""
        dataset = self.catalog.get(name)
        plugin = self.plugins[dataset.format]
        if not hasattr(plugin, "index_info"):
            raise ProteusError(f"dataset {name!r} has no structural index")
        return plugin.index_info(dataset)


# ---------------------------------------------------------------------------
# Result assembly helpers
# ---------------------------------------------------------------------------


def _failure_code(exc: BaseException) -> str:
    """The coded family of a failure (``TYP...``/``TIER...``/``RES...``);
    uncoded exceptions are grouped under ``internal``."""
    code = getattr(exc, "code", None)
    return code if isinstance(code, str) and code else "internal"


def _copy_pipeline_counters(profile: ExecutionProfile, counters) -> None:
    """Mirror a batch executor's pipeline counters into a profile."""
    profile.rows_scanned = counters.rows_scanned
    profile.batches_processed = counters.batches_processed
    profile.values_extracted = counters.values_extracted
    profile.values_from_cache = counters.values_from_cache
    profile.join_build_rows = counters.join_build_rows
    profile.join_output_rows = counters.join_output_rows
    profile.groups_built = counters.groups_built
    profile.output_rows = counters.output_rows
    profile.rows_sorted = counters.rows_sorted
    profile.unnest_output_rows = counters.unnest_output_rows


def _output_names(physical: PhysicalPlan) -> list[str]:
    physical = unwrap_sort(physical)
    if isinstance(physical, (PhysReduce, PhysNest)):
        return [column.name for column in physical.columns]
    raise ExecutionError("plan root must be Reduce or Nest")


def _validate_output_columns(physical: PhysicalPlan) -> None:
    """Reject plans whose output columns share a name but compute different
    expressions: every executor keys its result columns by name, so one of
    the two would silently shadow the other (e.g. ``SELECT a.id, b.id``
    without aliases)."""
    physical = unwrap_sort(physical)
    if not isinstance(physical, (PhysReduce, PhysNest)):
        return
    seen: dict[str, tuple] = {}
    for column in physical.columns:
        fingerprint = column.expression.fingerprint()
        previous = seen.get(column.name)
        if previous is not None and previous != fingerprint:
            raise PlanningError(
                f"duplicate output column name {column.name!r} refers to "
                "different expressions; give each a distinct alias"
            )
        seen[column.name] = fingerprint


def _normalize_result_columns(
    names: Sequence[str], columns: Mapping[str, Any]
) -> tuple[int, dict[str, Any]]:
    """Validate executor output columns and broadcast genuine scalars.

    Returns ``(row count, name -> columnar buffer)`` with every buffer sized
    to the row count; the buffers stay columnar (NumPy arrays pass through
    untouched) — this is the backing store of a :class:`ResultSet`.  Only
    genuine scalars (aggregate results, literals: plain Python scalars, NumPy
    scalars and 0-d arrays) are broadcast; a missing output column or
    multi-row columns of differing lengths indicate an executor shape bug and
    raise instead of being papered over.
    """
    buffers: dict[str, Any] = {}
    scalars: dict[str, bool] = {}
    for name in names:
        if name in buffers:
            continue  # duplicate output name over the same expression
        if name not in columns:
            raise ExecutionError(
                f"executor produced no output column {name!r}; "
                f"got columns: {sorted(columns)}"
            )
        column = columns[name]
        scalar = False
        if isinstance(column, np.ndarray) and column.ndim == 0:
            column = column.item()
            scalar = True
        elif isinstance(column, np.generic):
            column = column.item()
            scalar = True
        elif isinstance(column, (int, float, bool, str)) or column is None:
            scalar = True
        elif not isinstance(column, np.ndarray):
            column = list(column)
        buffers[name] = column
        scalars[name] = scalar
    row_lengths = {
        len(buffers[name]) for name in buffers if not scalars[name]
    }
    if len(row_lengths) > 1:
        shapes = ", ".join(
            f"{name}={len(buffers[name])}"
            for name in buffers
            if not scalars[name]
        )
        raise ExecutionError(f"output columns have mismatched lengths: {shapes}")
    length = row_lengths.pop() if row_lengths else (1 if names else 0)
    for name, scalar in scalars.items():
        if scalar:
            buffers[name] = [buffers[name]] * length
    return length, buffers


def _columns_to_rows(names: Sequence[str], columns: Mapping[str, Any]) -> list[tuple]:
    """Assemble named output columns into result rows (eager v1 helper; the
    engine itself now keeps results columnar inside :class:`ResultSet`)."""
    length, buffers = _normalize_result_columns(names, columns)
    if not names:
        return []
    lists = [_python_values(buffers[name]) for name in names]
    return list(zip(*lists))


def _python_values(buffer) -> list:
    """One columnar buffer as a list of normalized Python values: NumPy
    scalars unboxed and missing values (None, or NaN in float buffers — see
    ``types.is_missing``) surfaced as ``None``."""
    values = buffer.tolist() if isinstance(buffer, np.ndarray) else list(buffer)
    return [_output_value(value) for value in values]


def _output_value(value: Any) -> Any:
    value = _python_value(value)
    return None if t.is_missing(value) else value


def _apply_order_and_limit_columns(
    names: Sequence[str],
    length: int,
    data: dict[str, Any],
    order_by: Sequence[tuple[str, bool]],
    limit: int | None,
) -> tuple[int, dict[str, Any]]:
    """Apply ORDER BY / LIMIT in columnar space (compatibility wrapper around
    :func:`repro.core.sort.sort_columns` — the engine itself executes sorts
    through the :class:`~repro.core.physical.PhysSort` plan root)."""
    length, data, _ = sort_columns(names, length, data, order_by, limit)
    return length, data
