"""Data model of the Proteus reproduction.

The engine operates over a small but expressive type system that covers both
flat relational data and nested collections (the JSON data model):

* primitive types: bool, int, float, string, date,
* record types: named, typed fields,
* collection types: bag, set, list and array collections of any element type.

Collections are described by *monoids* (Fegaras & Maier): a collection monoid
(bag/set/list) describes how query output is assembled, while a primitive
monoid (sum/max/min/count/and/or) describes an aggregate.  The calculus,
algebra and code generator all share these definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError

# ---------------------------------------------------------------------------
# Primitive and composite data types
# ---------------------------------------------------------------------------


class DataType:
    """Base class of all data types.  Instances are immutable and hashable."""

    name: str = "unknown"

    def is_numeric(self) -> bool:
        return False

    def is_primitive(self) -> bool:
        return True

    def numpy_dtype(self) -> np.dtype:
        """Return the NumPy dtype used for columnar buffers of this type."""
        raise SchemaError(f"type {self.name} has no columnar representation")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self).__name__)


class BoolType(DataType):
    name = "bool"

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.bool_)


class IntType(DataType):
    name = "int"

    def is_numeric(self) -> bool:
        return True

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.int64)


class FloatType(DataType):
    name = "float"

    def is_numeric(self) -> bool:
        return True

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.float64)


class StringType(DataType):
    name = "string"

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(object)


class DateType(DataType):
    """Dates are stored as integer days since the Unix epoch."""

    name = "date"

    def is_numeric(self) -> bool:
        return True

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.int64)


BOOL = BoolType()
INT = IntType()
FLOAT = FloatType()
STRING = StringType()
DATE = DateType()

_PRIMITIVES_BY_NAME: dict[str, DataType] = {
    t.name: t for t in (BOOL, INT, FLOAT, STRING, DATE)
}


def is_missing(value: object) -> bool:
    """Whether a scalar is a missing value in the engine's encoding: ``None``
    in object buffers / tuple environments, NaN in float buffers (and in raw
    float data).  This is the single engine-wide definition of "missing",
    shared by every execution tier."""
    return value is None or (isinstance(value, float) and value != value)


def truthy(value: object) -> bool:
    """Predicate truthiness with missing values false, identically in every
    execution tier."""
    return not is_missing(value) and bool(value)


def python_value(value: object) -> object:
    """Unbox NumPy scalars to plain Python values (result assembly and
    tuple-at-a-time interop)."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def dig_path(value: object, path: Sequence[str]) -> object:
    """Walk a (possibly nested) record along a field path; missing steps and
    non-record intermediates yield ``None``.  This is the single
    nested-access rule shared by expression evaluation, the Volcano
    interpreter, the JSON plug-in and the batch-scan shim.  No ``getattr``
    fallback: raw-data values whose field names collide with builtin
    attributes (``count``, ``items``, ...) must not resolve to bound
    methods."""
    for step in path:
        if type(value) is dict:  # fast path: json/tuple data is plain dicts
            value = value.get(step)
        elif isinstance(value, Mapping):
            value = value.get(step)
        else:
            return None
    return value


def primitive_type(name: str) -> DataType:
    """Look up a primitive type by name (``"int"``, ``"float"``, ...)."""
    try:
        return _PRIMITIVES_BY_NAME[name]
    except KeyError as exc:
        raise SchemaError(f"unknown primitive type {name!r}") from exc


@dataclass(frozen=True)
class Field:
    """A named, typed field of a record."""

    name: str
    dtype: DataType
    nullable: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        suffix = "?" if self.nullable else ""
        return f"{self.name}:{self.dtype.name}{suffix}"


class RecordType(DataType):
    """A record (struct) type: an ordered list of named, typed fields."""

    name = "record"

    def __init__(self, fields: Sequence[Field]):
        names = [f.name for f in fields]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate field names in record: {names}")
        self._fields: tuple[Field, ...] = tuple(fields)
        self._by_name: dict[str, Field] = {f.name: f for f in self._fields}

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    def field_names(self) -> list[str]:
        return [f.name for f in self._fields]

    def has_field(self, name: str) -> bool:
        return name in self._by_name

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(
                f"record has no field {name!r}; available: {self.field_names()}"
            ) from exc

    def field_type(self, name: str) -> DataType:
        return self.field(name).dtype

    def resolve_path(self, path: Sequence[str]) -> DataType:
        """Resolve a (possibly nested) field path to the type it denotes."""
        current: DataType = self
        for step in path:
            if not isinstance(current, RecordType):
                raise SchemaError(f"cannot descend into non-record type via {step!r}")
            current = current.field_type(step)
        return current

    def is_primitive(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RecordType) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        inner = ", ".join(repr(f) for f in self._fields)
        return f"record({inner})"


class CollectionKind:
    """Collection monoid kinds supported by the calculus."""

    BAG = "bag"
    SET = "set"
    LIST = "list"
    ARRAY = "array"

    ALL = (BAG, SET, LIST, ARRAY)


class CollectionType(DataType):
    """A homogeneous collection (bag, set, list or array) of elements."""

    name = "collection"

    def __init__(self, element: DataType, kind: str = CollectionKind.BAG):
        if kind not in CollectionKind.ALL:
            raise SchemaError(f"unknown collection kind {kind!r}")
        self.element = element
        self.kind = kind

    def is_primitive(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CollectionType)
            and self.kind == other.kind
            and self.element == other.element
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.element))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.kind}({self.element!r})"


# ---------------------------------------------------------------------------
# Monoids
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Monoid:
    """A monoid used either to build collections or to aggregate values.

    ``zero`` is the identity element; ``commutative`` and ``idempotent``
    describe the algebraic properties the normalizer may rely on when
    reordering qualifiers.
    """

    name: str
    zero: object
    commutative: bool
    idempotent: bool
    is_collection: bool


SUM = Monoid("sum", 0, True, False, False)
COUNT = Monoid("count", 0, True, False, False)
MAX = Monoid("max", None, True, True, False)
MIN = Monoid("min", None, True, True, False)
AVG = Monoid("avg", None, True, False, False)
AND = Monoid("and", True, True, True, False)
OR = Monoid("or", False, True, True, False)
BAG = Monoid("bag", (), True, False, True)
SET = Monoid("set", frozenset(), True, True, True)
LIST = Monoid("list", (), False, False, True)

_MONOIDS_BY_NAME: dict[str, Monoid] = {
    m.name: m for m in (SUM, COUNT, MAX, MIN, AVG, AND, OR, BAG, SET, LIST)
}

AGGREGATE_MONOIDS = ("sum", "count", "max", "min", "avg", "and", "or")
COLLECTION_MONOIDS = ("bag", "set", "list")


def monoid(name: str) -> Monoid:
    """Look up a monoid by name."""
    try:
        return _MONOIDS_BY_NAME[name.lower()]
    except KeyError as exc:
        raise SchemaError(f"unknown monoid {name!r}") from exc


# ---------------------------------------------------------------------------
# Schema helpers
# ---------------------------------------------------------------------------


def make_schema(spec: Mapping[str, object] | Iterable[tuple[str, object]]) -> RecordType:
    """Build a :class:`RecordType` from a concise specification.

    ``spec`` maps field names to either a primitive type name (``"int"``), a
    :class:`DataType`, a nested mapping (for nested records), or a one-element
    list (for a nested collection of the element spec).

    >>> schema = make_schema({"id": "int", "children": [{"name": "string", "age": "int"}]})
    >>> schema.field_type("id").name
    'int'
    """
    items = spec.items() if isinstance(spec, Mapping) else spec
    fields = [Field(name, _spec_to_type(value)) for name, value in items]
    return RecordType(fields)


def _spec_to_type(value: object) -> DataType:
    if isinstance(value, DataType):
        return value
    if isinstance(value, str):
        return primitive_type(value)
    if isinstance(value, Mapping):
        return make_schema(value)
    if isinstance(value, (list, tuple)):
        if len(value) != 1:
            raise SchemaError("collection spec must contain exactly one element spec")
        return CollectionType(_spec_to_type(value[0]), CollectionKind.LIST)
    raise SchemaError(f"cannot interpret schema spec element {value!r}")


def infer_type(value: object) -> DataType:
    """Infer the data type of a Python value (used by schema discovery)."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, (int, np.integer)):
        return INT
    if isinstance(value, (float, np.floating)):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if isinstance(value, Mapping):
        return make_schema({k: infer_type(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        if not value:
            return CollectionType(STRING, CollectionKind.LIST)
        return CollectionType(infer_type(value[0]), CollectionKind.LIST)
    if value is None:
        return STRING
    raise SchemaError(f"cannot infer type of value {value!r}")


def merge_types(left: DataType, right: DataType) -> DataType:
    """Merge two inferred types (int widens to float; records merge fields)."""
    if left == right:
        return left
    numeric = {INT, FLOAT}
    if left in numeric and right in numeric:
        return FLOAT
    if isinstance(left, RecordType) and isinstance(right, RecordType):
        names: list[str] = []
        merged: dict[str, DataType] = {}
        nullable: set[str] = set()
        for rec in (left, right):
            for f in rec.fields:
                if f.name not in merged:
                    names.append(f.name)
                    merged[f.name] = f.dtype
                else:
                    merged[f.name] = merge_types(merged[f.name], f.dtype)
        left_names = set(left.field_names())
        right_names = set(right.field_names())
        nullable = (left_names | right_names) - (left_names & right_names)
        return RecordType(
            [Field(n, merged[n], nullable=n in nullable) for n in names]
        )
    if isinstance(left, CollectionType) and isinstance(right, CollectionType):
        # An empty collection infers its element type as STRING; when merged
        # with a collection whose elements are records, keep the record shape.
        if isinstance(left.element, RecordType) and right.element == STRING:
            return left
        if isinstance(right.element, RecordType) and left.element == STRING:
            return right
        return CollectionType(merge_types(left.element, right.element), left.kind)
    # Fall back to string, the most permissive representation.
    return STRING


def arithmetic_result_type(left: DataType, right: DataType) -> DataType:
    """Type of an arithmetic expression over two numeric operands."""
    if not left.is_numeric() or not right.is_numeric():
        raise SchemaError(
            f"arithmetic requires numeric operands, got {left.name} and {right.name}"
        )
    if FLOAT in (left, right):
        return FLOAT
    return INT
