"""Deterministic fault injection for the chaos suite.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — "at the Nth
I/O call, fail like *this*" — installed on a plugin with
``plugin.install_fault_injector(FaultInjector(plan))``.  The injector fires
**beneath** the retry layer (:func:`repro.resilience.retry.retry_io` wraps
the attempt that consults it), so an injected transient ``OSError`` is
retried exactly like a real one, while persistent truncation exhausts the
retry budget into RES005 and an injected corrupt span surfaces immediately
as RES006.

Fault kinds:

==========  ==============================================================
io-error    one-shot ``OSError`` (default ``times=1``) — recoverable by
            the retry layer
truncated   persistent ``OSError`` (use ``times=None``) — exhausts retries
            into :class:`~repro.errors.ScanIOError`
corrupt     ``ValueError`` as if the bytes failed to parse — surfaces as
            :class:`~repro.errors.CorruptDataError`, never retried
slow        sleeps ``delay_seconds`` before the attempt — drives deadline
            and cancellation coverage
==========  ==============================================================

Call numbering is deterministic: each top-level I/O *step* (not each retry
attempt) takes the next number from a locked counter, and a spec matches
when its ``at_call`` equals that number (optionally filtered by operation
name and dataset).  Retries of the same step keep the step's number, so a
persistent fault keeps firing across attempts while a ``times=1`` fault
fails once and lets the retry succeed.  :meth:`FaultPlan.seeded` derives a
reproducible plan from an integer seed for randomized chaos runs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.concurrency import make_lock

FAULT_KINDS = ("io-error", "truncated", "corrupt", "slow")


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: fire ``kind`` at I/O call number ``at_call``."""

    kind: str
    at_call: int
    #: Attempts to fail at that call; ``None`` = every attempt (persistent).
    times: int | None = 1
    #: Optional filters: only fire for this operation / dataset.
    operation: str | None = None
    dataset: str | None = None
    #: Sleep for ``slow`` faults.
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_call < 1:
            raise ValueError("at_call is 1-based and must be >= 1")


class FaultPlan:
    """An immutable sequence of :class:`FaultSpec` entries."""

    def __init__(self, specs: Sequence[FaultSpec]):
        self.specs = tuple(specs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        faults: int = 3,
        max_call: int = 8,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same faults, always."""
        rng = random.Random(seed)
        specs = []
        for _ in range(faults):
            kind = rng.choice(list(kinds))
            specs.append(
                FaultSpec(
                    kind=kind,
                    at_call=rng.randint(1, max_call),
                    times=None if kind == "truncated" else 1,
                    delay_seconds=0.01,
                )
            )
        return cls(specs)


class FaultInjector:
    """Counts a plugin's I/O steps and fires the plan's faults on cue."""

    def __init__(self, plan: FaultPlan, sleep: Callable[[float], None] = time.sleep):
        self.plan = plan
        self._sleep = sleep
        self._lock = make_lock("FaultInjector._lock")
        self._calls = 0
        self._fired: dict[tuple[int, int], int] = {}
        self._injected: list[tuple[int, str]] = []

    def next_call(self, operation: str, dataset: str | None) -> int:
        """Allocate the step number for one top-level I/O call."""
        with self._lock:
            self._calls += 1
            return self._calls

    def on_attempt(self, call: int, operation: str, dataset: str | None) -> None:
        """Fire a matching fault for this attempt of step ``call``, if any."""
        spec = None
        with self._lock:
            for index, candidate in enumerate(self.plan.specs):
                if candidate.at_call != call:
                    continue
                if candidate.operation is not None and candidate.operation != operation:
                    continue
                if candidate.dataset is not None and candidate.dataset != dataset:
                    continue
                fired = self._fired.get((call, index), 0)
                if candidate.times is not None and fired >= candidate.times:
                    continue
                self._fired[(call, index)] = fired + 1
                self._injected.append((call, candidate.kind))
                spec = candidate
                break
        if spec is None:
            return
        if spec.kind == "slow":
            self._sleep(spec.delay_seconds)
            return
        where = f"call {call}, {operation}" + (f" on {dataset!r}" if dataset else "")
        if spec.kind == "corrupt":
            raise ValueError(f"injected corrupt data span ({where})")
        flavour = "truncated read" if spec.kind == "truncated" else "transient I/O error"
        raise OSError(f"injected {flavour} ({where})")

    @property
    def injected(self) -> list[tuple[int, str]]:
        """(call, kind) pairs actually fired, in firing order."""
        with self._lock:
            return list(self._injected)

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls
