"""Cooperative per-query context: deadline, cancellation token, progress.

A :class:`QueryContext` is created once per query in ``engine._execute`` and
threaded through every execution tier.  Cancellation is *cooperative*: no
thread is ever killed.  Instead each tier calls :meth:`QueryContext.check` at
a natural unit of work — per batch in the vectorized pipeline, per morsel in
the parallel scheduler (where workers also observe :meth:`should_stop`
alongside the error-cancel event so pool teardown drains cleanly), every
``volcano_stride`` tuples in the Volcano interpreter, and per rebound kernel
call in generated programs — and the check raises a coded
:class:`~repro.errors.QueryTimeoutError` / :class:`~repro.errors.QueryCancelledError`
on the worker where the work is happening.

The context also carries the per-query I/O retry budget consumed by
:func:`repro.resilience.retry.retry_io` and a progress ledger (batches, rows,
morsels, kernel calls) that the engine copies into the profile when a query
is aborted, so callers can see how far it got.

Because plugins are reached from every tier and from pool worker threads,
the active context travels in a ``threading.local`` slot: the engine (and
each pool worker) wraps execution in :func:`activate_context`, and the plugin
I/O layer recovers it with :func:`get_active_context`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.core.concurrency import make_lock
from repro.errors import QueryCancelledError, QueryTimeoutError

if TYPE_CHECKING:
    from repro.resilience.retry import RetryPolicy

#: Tuples between deadline checks in the Volcano interpreter.
DEFAULT_VOLCANO_STRIDE = 1024
#: Transient-I/O retries a single query may consume across all its scans.
DEFAULT_RETRY_BUDGET = 16


class CancellationToken:
    """A thread-safe flag a client sets to cancel an in-flight query.

    Tokens are handed to ``execute(..., cancel=token)`` and may be shared by
    several queries; ``cancel()`` can be called from any thread, any number
    of times.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class QueryContext:
    """Deadline + cancellation token + progress ledger for one query.

    The deadline and token are fixed at construction (immutable afterwards);
    only the progress ledger and retry counter mutate, always under
    ``_lock``.  :meth:`check` is the hot path — two attribute tests when the
    context is passive — so a default-configured engine pays nothing
    measurable for always-on resilience (gated by
    ``benchmarks/bench_resilience_overhead.py``).
    """

    def __init__(
        self,
        *,
        timeout_seconds: float | None = None,
        token: CancellationToken | None = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        retry_policy: "RetryPolicy | None" = None,
        volcano_stride: int = DEFAULT_VOLCANO_STRIDE,
    ) -> None:
        self.timeout_seconds = timeout_seconds
        self.deadline = (
            time.monotonic() + timeout_seconds if timeout_seconds is not None else None
        )
        self.token = token
        self.retry_budget = max(int(retry_budget), 0)
        self.retry_policy = retry_policy
        self.volcano_stride = max(int(volcano_stride), 1)
        self._lock = make_lock("QueryContext._lock")
        self._io_retries = 0
        self._progress: dict[str, int] = {}

    # ------------------------------------------------------------------ state

    @property
    def active(self) -> bool:
        """True when a deadline or a cancellation token is attached."""
        return self.deadline is not None or self.token is not None

    def should_stop(self) -> bool:
        """Non-raising probe used in pool worker loops."""
        token = self.token
        if token is not None and token.cancelled:
            return True
        deadline = self.deadline
        return deadline is not None and time.monotonic() >= deadline

    def check(self) -> None:
        """Raise the coded error if the query must stop; otherwise no-op."""
        token = self.token
        if token is not None and token.cancelled:
            raise QueryCancelledError("query cancelled by client token")
        deadline = self.deadline
        if deadline is not None and time.monotonic() >= deadline:
            raise QueryTimeoutError(
                f"query deadline of {self.timeout_seconds}s expired",
                timeout_seconds=self.timeout_seconds,
            )

    # --------------------------------------------------------------- progress

    def count(self, key: str, amount: int = 1) -> None:
        """Accumulate a partial-progress counter (thread-safe)."""
        with self._lock:
            self._progress[key] = self._progress.get(key, 0) + amount

    def note_batch(self, rows: int) -> None:
        """Per-batch hook of the vectorized scan: check, then record."""
        self.check()
        with self._lock:
            self._progress["batches"] = self._progress.get("batches", 0) + 1
            self._progress["rows"] = self._progress.get("rows", 0) + rows

    def progress_snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._progress)

    # ------------------------------------------------------------ retry budget

    def consume_retry(self) -> bool:
        """Charge one transient-I/O retry; False once the budget is spent."""
        with self._lock:
            if self._io_retries >= self.retry_budget:
                return False
            self._io_retries += 1
            return True

    @property
    def io_retries(self) -> int:
        with self._lock:
            return self._io_retries


_ACTIVE = threading.local()


def get_active_context() -> QueryContext | None:
    """The context of the query running on this thread, if any."""
    return getattr(_ACTIVE, "context", None)


@contextmanager
def activate_context(context: QueryContext | None) -> Iterator[QueryContext | None]:
    """Publish ``context`` as this thread's active query context.

    The engine activates on the calling thread; :class:`WorkerPool` activates
    on each worker thread, so plugin I/O reached from any tier can find the
    per-query retry budget without new parameters on every call path.
    """
    previous = getattr(_ACTIVE, "context", None)
    _ACTIVE.context = context
    try:
        yield context
    finally:
        _ACTIVE.context = previous
