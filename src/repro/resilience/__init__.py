"""Resilience subsystem: deadlines, cancellation, admission control, retry.

The paper's engine executes directly over raw external files, so every query
is exposed to I/O faults, corrupt inputs and unbounded work that a loaded
warehouse never sees.  This package supplies the serving-layer plumbing that
ROADMAP item 1 requires before a multi-client service can exist:

* :class:`QueryContext` — a cooperative deadline + cancellation token +
  progress ledger created once per query in ``engine._execute`` and observed
  per batch (vectorized), per morsel (parallel), on a tuple stride (Volcano)
  and per kernel call (codegen),
* :class:`AdmissionController` — bounds concurrent queries and reserved
  bytes, queueing with a timeout before a coded rejection,
* :func:`retry_io` — exponential-backoff retry for transient raw-data I/O,
  charged against a per-query retry budget,
* :class:`FaultInjector` / :class:`FaultPlan` — a deterministic fault
  harness the chaos suite uses to prove every injected fault terminates in a
  correct result or a coded :class:`~repro.errors.ProteusError`.
"""

from repro.resilience.admission import AdmissionController, AdmissionSlot
from repro.resilience.context import (
    CancellationToken,
    QueryContext,
    activate_context,
    get_active_context,
)
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_io

__all__ = [
    "AdmissionController",
    "AdmissionSlot",
    "CancellationToken",
    "QueryContext",
    "activate_context",
    "get_active_context",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "retry_io",
]
