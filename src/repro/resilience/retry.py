"""Exponential-backoff retry for transient raw-data I/O.

Querying raw files means every scan crosses the filesystem: a mapped page
can fault, an NFS read can return ``EIO`` once and succeed on the next
attempt.  :func:`retry_io` wraps exactly one I/O step (an mmap + parse, a
batch slice) and classifies failures:

* ``OSError`` is *transient*: retried with exponential backoff, each retry
  charged against the query's retry budget
  (:meth:`~repro.resilience.context.QueryContext.consume_retry`), until the
  policy's attempts or the budget run out — then a coded
  :class:`~repro.errors.ScanIOError` (RES005).
* ``ValueError`` / ``UnicodeDecodeError`` mean *corrupt bytes*: determinism
  makes retrying pointless, so they surface immediately as
  :class:`~repro.errors.CorruptDataError` (RES006).
* :class:`~repro.errors.ProteusError` subclasses pass through untouched —
  they are already classified.

The active :class:`~repro.resilience.context.QueryContext` (if any) supplies
the retry policy/budget and is checked between attempts so a retry loop can
never outlive a deadline or a cancellation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import CorruptDataError, ProteusError, ScanIOError
from repro.resilience.context import get_active_context


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape for transient scan I/O."""

    max_attempts: int = 3
    base_delay_seconds: float = 0.005
    multiplier: float = 2.0
    max_delay_seconds: float = 0.25

    def delay(self, retry_index: int) -> float:
        """Sleep before the ``retry_index``-th retry (0-based)."""
        return min(
            self.base_delay_seconds * (self.multiplier ** retry_index),
            self.max_delay_seconds,
        )


DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_io(
    attempt: Callable[[], Any],
    *,
    operation: str,
    dataset: str | None = None,
    policy: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Run one raw-I/O step under the retry policy; see module docstring."""
    context = get_active_context()
    if policy is None:
        policy = (
            context.retry_policy
            if context is not None and context.retry_policy is not None
            else DEFAULT_RETRY_POLICY
        )
    attempts = 0
    while True:
        try:
            return attempt()
        except ProteusError:
            raise
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptDataError(
                f"corrupt data during {operation}"
                + (f" of {dataset!r}" if dataset else "")
                + f": {exc}",
                dataset=dataset,
            ) from exc
        except OSError as exc:
            attempts += 1
            why = None
            if attempts >= max(policy.max_attempts, 1):
                why = f"still failing after {attempts} attempt(s)"
            elif context is not None and not context.consume_retry():
                why = "per-query retry budget exhausted"
            if why is not None:
                raise ScanIOError(
                    f"transient I/O fault during {operation}"
                    + (f" of {dataset!r}" if dataset else "")
                    + f" ({why}): {exc}",
                    dataset=dataset,
                    attempts=attempts,
                ) from exc
            if context is not None:
                context.check()  # never retry past a deadline / cancellation
            sleep(policy.delay(attempts - 1))
