"""Admission control: bound concurrent queries and reserved bytes.

Motivated by the workload-isolation half of the serving story (ROADMAP item
1): a query is *admitted* before execution, reserving a slot and an
estimated number of bytes against the engine's memory budget, and releases
both in a ``finally`` when it completes or fails.  When the controller is
full, new arrivals queue on a condition variable up to
``queue_timeout_seconds``; past that they are rejected with a coded
:class:`~repro.errors.AdmissionRejectedError` (RES003).  An estimate that
could *never* fit the byte budget is rejected immediately with
:class:`~repro.errors.MemoryBudgetError` (RES004) — waiting would not help.

Synchronisation: every mutable field is touched only while holding
``_condition`` (a :class:`threading.Condition`), declared EXTERNALLY_GUARDED
in :mod:`repro.core.concurrency` because the lint recognises lock factories,
not condition variables.
"""

from __future__ import annotations

import threading
import time

from repro.errors import AdmissionRejectedError, MemoryBudgetError


class AdmissionSlot:
    """A granted admission: releases its slot + byte reservation once."""

    __slots__ = ("_controller", "reserved_bytes", "_released")

    def __init__(self, controller: "AdmissionController", reserved_bytes: int):
        self._controller = controller
        self.reserved_bytes = reserved_bytes
        self._released = False

    def release(self) -> None:
        """Idempotent: the engine calls this in a ``finally``."""
        if self._released:
            return
        self._released = True
        self._controller._release(self)


class AdmissionController:
    """Max-concurrency + byte-budget gate in front of ``engine._execute``."""

    def __init__(
        self,
        *,
        max_concurrent: int | None = None,
        memory_budget_bytes: int | None = None,
        queue_timeout_seconds: float = 5.0,
    ):
        self.max_concurrent = max_concurrent
        self.memory_budget_bytes = memory_budget_bytes
        self.queue_timeout_seconds = max(float(queue_timeout_seconds), 0.0)
        self._condition = threading.Condition()
        self._active = 0
        self._reserved_bytes = 0
        self._admitted_total = 0
        self._rejected_total = 0

    # ---------------------------------------------------------------- admit

    def admit(
        self, estimated_bytes: int = 0, query_text: str | None = None
    ) -> AdmissionSlot:
        """Grant a slot, queueing up to the timeout; raise RES003/RES004."""
        estimated = max(int(estimated_bytes), 0)
        budget = self.memory_budget_bytes
        if budget is not None and estimated > budget:
            with self._condition:
                self._rejected_total += 1
            raise MemoryBudgetError(
                f"query needs an estimated {estimated} bytes but the "
                f"admission byte budget is {budget}"
            )
        deadline = time.monotonic() + self.queue_timeout_seconds
        with self._condition:
            while not self._fits(estimated):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._rejected_total += 1
                    raise AdmissionRejectedError(
                        "admission queue timed out after "
                        f"{self.queue_timeout_seconds}s "
                        f"({self._active} active, "
                        f"{self._reserved_bytes} bytes reserved)"
                    )
                self._condition.wait(remaining)
            self._active += 1
            self._reserved_bytes += estimated
            self._admitted_total += 1
        return AdmissionSlot(self, estimated)

    def _fits(self, estimated: int) -> bool:
        if self.max_concurrent is not None and self._active >= self.max_concurrent:
            return False
        budget = self.memory_budget_bytes
        if budget is not None and self._reserved_bytes + estimated > budget:
            return False
        return True

    def _release(self, slot: AdmissionSlot) -> None:
        with self._condition:
            self._active -= 1
            self._reserved_bytes -= slot.reserved_bytes
            self._condition.notify_all()

    # ------------------------------------------------------------- snapshots

    @property
    def active(self) -> int:
        with self._condition:
            return self._active

    @property
    def reserved_bytes(self) -> int:
        with self._condition:
            return self._reserved_bytes

    @property
    def admitted_total(self) -> int:
        with self._condition:
            return self._admitted_total

    @property
    def rejected_total(self) -> int:
        with self._condition:
            return self._rejected_total
