"""Rebound deadline/cancellation checks for generated query programs.

A codegen program is a straight-line Python function — there is no batch
loop the engine controls, so the cooperative check rides the same idiom as
span recording in :mod:`repro.obs.instrument`: every kernel entry point of
one :class:`~repro.core.codegen.runtime.QueryRuntime` instance is shadowed
by a closure that calls :meth:`QueryContext.check` (raising the coded
RES001/RES002 error) and records a ``codegen_kernel_calls`` progress tick
before delegating to the original bound method.  Only *active* contexts (a
deadline or token attached) are instrumented; a default-configured engine
keeps the plain methods and pays nothing.

Composition with tracing is free: the observability layer rebinds first in
``QueryRuntime.__init__``, so the check closure wraps the traced kernel and
both fire per call.
"""

from __future__ import annotations

from typing import Any

#: Kernel entry points a generated program calls for each unit of work.
#: ``record_output`` is intentionally absent: it runs after the final
#: materialization, when aborting can no longer save any work.
CHECKED_KERNELS = (
    "scan",
    "scan_selected",
    "unnest",
    "radix_join",
    "cross_product",
    "mask",
    "radix_group",
    "group_agg",
    "scalar_agg",
)


def instrument_runtime_checks(runtime: Any, context: Any) -> None:
    """Shadow ``runtime``'s kernels with deadline/cancel checking closures."""
    for name in CHECKED_KERNELS:
        inner = getattr(runtime, name, None)
        if inner is None:
            continue
        setattr(runtime, name, _checked(inner, context))


def _checked(inner: Any, context: Any) -> Any:
    def checked(*args: Any, **kwargs: Any) -> Any:
        context.check()
        context.count("codegen_kernel_calls")
        return inner(*args, **kwargs)

    return checked
