"""Wire protocol of the query service: JSON request/response shapes.

Requests
--------

``POST /v1/query`` and ``POST /v1/execute`` share one body shape::

    {
        "query":      "select ... where qty > ?",   # /v1/query (+ /v1/prepare)
        "handle":     "stmt-1",                     # /v1/execute instead
        "args":       [10],                          # positional parameters
        "params":     {"cat": "tools"},              # named parameters
        "timeout_ms": 250,                           # optional deadline
        "query_id":   "client-req-7"                 # optional cancel handle
    }

``timeout_ms`` maps onto ``PreparedQuery.execute(timeout=...)``;
``query_id`` registers a per-request cancellation token that
``DELETE /v1/query/<query_id>`` trips from another connection.

Responses
---------

Results are **columnar**, mirroring :class:`~repro.core.engine.ResultSet`:
``columns`` is the output order, ``data`` maps each column name to its value
list (missing values as ``null``), and ``tier`` / ``profile`` carry the
execution metadata the engine already tracks — the server adds nothing.

Malformed requests raise :class:`BadRequestError` (surfaced as HTTP 400 with
protocol code ``SRV001``); the server never guesses at intent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.engine import ResultSet

#: ExecutionProfile counters surfaced in the response's ``profile`` object.
#: A deliberate subset: the tier decision, the scan/cache economics the
#: paper's evaluation revolves around, and the resilience counters.
_PROFILE_FIELDS = (
    "execution_tier",
    "predicted_tier",
    "tier_decline_reasons",
    "rows_scanned",
    "values_extracted",
    "values_from_cache",
    "batches_processed",
    "output_rows",
    "parallel_workers",
    "compiled_from_cache",
    "io_retries",
)


class BadRequestError(Exception):
    """The request body does not follow the protocol (HTTP 400, SRV001)."""


@dataclass
class QueryRequest:
    """One parsed execution request (``/v1/query`` or ``/v1/execute``)."""

    query: str | None
    handle: str | None
    args: list
    params: dict[str, Any]
    timeout_seconds: float | None
    query_id: str | None


def parse_body(raw: Any) -> dict:
    """Require a JSON object at the top level."""
    if not isinstance(raw, dict):
        raise BadRequestError("request body must be a JSON object")
    return raw


def parse_query_request(body: Mapping[str, Any], *, require: str) -> QueryRequest:
    """Parse an execution request; ``require`` is ``"query"`` or ``"handle"``."""
    query = body.get("query")
    handle = body.get("handle")
    if require == "query":
        if not isinstance(query, str) or not query.strip():
            raise BadRequestError('"query" must be a non-empty string')
    else:
        if not isinstance(handle, str) or not handle:
            raise BadRequestError('"handle" must be a statement handle string')
    args = body.get("args", [])
    if not isinstance(args, list):
        raise BadRequestError('"args" must be a JSON array of positional values')
    params = body.get("params", {})
    if not isinstance(params, dict) or not all(isinstance(k, str) for k in params):
        raise BadRequestError('"params" must be a JSON object of named values')
    timeout_seconds = _parse_timeout_ms(body.get("timeout_ms"))
    query_id = body.get("query_id")
    if query_id is not None and (not isinstance(query_id, str) or not query_id):
        raise BadRequestError('"query_id" must be a non-empty string')
    return QueryRequest(
        query=query if isinstance(query, str) else None,
        handle=handle if isinstance(handle, str) else None,
        args=list(args),
        params=dict(params),
        timeout_seconds=timeout_seconds,
        query_id=query_id,
    )


def _parse_timeout_ms(value: Any) -> float | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError('"timeout_ms" must be a number of milliseconds')
    if value < 0:
        raise BadRequestError('"timeout_ms" must be non-negative')
    return float(value) / 1000.0


def encode_result(result: ResultSet) -> dict:
    """Columnar JSON encoding of a :class:`ResultSet` (+ tier/profile)."""
    payload: dict[str, Any] = {
        "columns": list(result.columns),
        "data": {name: result.column(name) for name in result.columns},
        "row_count": len(result),
        "tier": result.tier,
        "execution_seconds": result.execution_seconds,
    }
    profile = result.profile
    if profile is not None:
        payload["profile"] = profile_summary(profile)
    return payload


def profile_summary(profile: Any) -> dict:
    """JSON-safe subset of an ExecutionProfile (works for abort profiles too)."""
    summary: dict[str, Any] = {}
    for field in _PROFILE_FIELDS:
        value = getattr(profile, field, None)
        if value is not None:
            summary[field] = value
    aborted = getattr(profile, "aborted", None)
    if aborted is not None:
        summary["aborted"] = aborted
        summary["partial_progress"] = dict(
            getattr(profile, "partial_progress", {}) or {}
        )
    return summary


def json_default(value: Any) -> Any:
    """``json.dumps`` fallback for NumPy scalars and other non-JSON leaves."""
    for attr in ("item",):  # numpy scalar -> native Python
        method = getattr(value, attr, None)
        if callable(method):
            try:
                return method()
            except (TypeError, ValueError):
                break
    return str(value)
