"""Engine-error → HTTP translation for the query service.

The server never invents error codes: engine failures carry their
machine-readable code (``TYP00x``, ``RES00x``) into the response body
verbatim, and :func:`repro.errors.http_status_for` — the table kept next to
the code definitions — picks the status.  Only *protocol*-level failures,
which never reach the engine, get their own ``SRV`` codes:

========  ======  ==================================================
SRV001    400     malformed request (bad JSON, missing/mistyped field)
SRV002    404     unknown endpoint or resource (path, query_id)
SRV003    404     unknown statement handle
SRV004    409     duplicate ``query_id`` still executing
========  ======  ==================================================
"""

from __future__ import annotations

from typing import Any

from repro.errors import error_code, http_status_for
from repro.serve.protocol import profile_summary


def engine_error_response(exc: BaseException) -> tuple[int, dict]:
    """(status, JSON body) for an engine failure.

    Aborted executions (RES001/RES002) carry the abort profile the engine
    attached to the exception, so a 408 body reports ``partial_progress`` —
    how far the query got before the deadline.
    """
    body: dict[str, Any] = {
        "error": {
            "code": error_code(exc),
            "type": type(exc).__name__,
            "message": str(exc),
        }
    }
    profile = getattr(exc, "profile", None)
    if profile is not None:
        body["profile"] = profile_summary(profile)
        body["partial_progress"] = dict(
            getattr(profile, "partial_progress", {}) or {}
        )
    return http_status_for(exc), body


def protocol_error_response(
    status: int, code: str, message: str
) -> tuple[int, dict]:
    """(status, JSON body) for a protocol-level (SRV) failure."""
    return status, {"error": {"code": code, "message": message}}
