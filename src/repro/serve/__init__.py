"""HTTP query service over one shared engine (ROADMAP item 1).

The serving layer is deliberately thin: every hard multi-client problem —
thread-safe prepare/plan caches, admission control, deadlines and
cancellation, cross-query scan coalescing — lives in the engine, and the
server only translates HTTP requests onto the engine API and engine error
codes onto HTTP statuses.  See :mod:`repro.serve.server` for the endpoint
table and :mod:`repro.serve.protocol` for the wire shapes.
"""

from repro.serve.registry import ActiveQueryRegistry, StatementRegistry
from repro.serve.server import ProteusServer

__all__ = ["ActiveQueryRegistry", "ProteusServer", "StatementRegistry"]
