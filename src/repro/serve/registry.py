"""Server-side statement handles and in-flight query cancellation.

Two small registries back the stateful endpoints:

* :class:`StatementRegistry` — ``POST /v1/prepare`` stores the
  :class:`~repro.core.engine.PreparedQuery` and hands the client an opaque
  ``stmt-N`` handle; ``POST /v1/execute`` resolves it.  A
  :class:`~repro.core.engine.PreparedQuery` is itself thread-safe (it is the
  same object the engine's per-text prepared cache shares between sessions),
  so one handle may be executed by many connections concurrently.
* :class:`ActiveQueryRegistry` — an execution request carrying a
  ``query_id`` registers a fresh
  :class:`~repro.resilience.context.CancellationToken` for its lifetime;
  ``DELETE /v1/query/<id>`` — served on a *different* connection thread —
  trips the token and the engine's cooperative checks abort the query with
  RES002 (HTTP 499).

Both registries follow the repo's lock discipline (``make_lock``, mutations
declared in :mod:`repro.core.concurrency`'s ``GUARDED_BY`` table).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.concurrency import make_lock
from repro.resilience.context import CancellationToken

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import PreparedQuery


class DuplicateQueryIdError(Exception):
    """A ``query_id`` is already executing (HTTP 409, SRV004)."""


class StatementRegistry:
    """Handle → :class:`PreparedQuery` map behind ``/v1/prepare``.

    Handles live until explicitly closed (``DELETE /v1/statement/<handle>``)
    or the server shuts down; the registry itself holds no execution state.
    """

    def __init__(self) -> None:
        self._lock = make_lock("StatementRegistry._lock")
        self._statements: dict[str, "PreparedQuery"] = {}
        self._counter = 0

    def create(self, prepared: "PreparedQuery") -> str:
        with self._lock:
            self._counter += 1
            handle = f"stmt-{self._counter}"
            self._statements[handle] = prepared
        return handle

    def get(self, handle: str) -> "PreparedQuery | None":
        with self._lock:
            return self._statements.get(handle)

    def close(self, handle: str) -> bool:
        with self._lock:
            return self._statements.pop(handle, None) is not None

    def count(self) -> int:
        with self._lock:
            return len(self._statements)


class ActiveQueryRegistry:
    """``query_id`` → live :class:`CancellationToken` for in-flight requests."""

    def __init__(self) -> None:
        self._lock = make_lock("ActiveQueryRegistry._lock")
        self._tokens: dict[str, CancellationToken] = {}

    def register(self, query_id: str) -> CancellationToken:
        """Install a fresh token for ``query_id`` for one execution."""
        token = CancellationToken()
        with self._lock:
            if query_id in self._tokens:
                raise DuplicateQueryIdError(
                    f"query_id {query_id!r} is already executing"
                )
            self._tokens[query_id] = token
        return token

    def cancel(self, query_id: str) -> bool:
        """Trip the token of an in-flight query; False if unknown/finished."""
        with self._lock:
            token = self._tokens.get(query_id)
        if token is None:
            return False
        token.cancel()
        return True

    def release(self, query_id: str, token: CancellationToken) -> None:
        """Remove ``query_id`` if it still maps to ``token`` (idempotent)."""
        with self._lock:
            if self._tokens.get(query_id) is token:
                del self._tokens[query_id]

    def count(self) -> int:
        with self._lock:
            return len(self._tokens)
