"""The concurrent query service: one shared engine, many HTTP clients.

:class:`ProteusServer` mounts ONE shared
:class:`~repro.core.engine.ProteusEngine` behind a dependency-free threaded
HTTP server (stdlib ``http.server`` + ``socketserver.ThreadingMixIn`` — one
handler thread per connection, named ``proteus-http-*`` so thread-leak
checks can find them).  The engine already is the concurrency story —
thread-safe prepare/plan caches, admission control as the front door,
per-query deadlines and cancellation, cross-query scan coalescing — so the
server stays a thin translation layer:

========================  =================================================
``POST /v1/query``        one-shot execution through the engine's per-text
                          prepared cache (``timeout_ms`` → ``timeout=``,
                          ``query_id`` → a registered cancel token)
``POST /v1/prepare``      server-side statement handle (``stmt-N``)
``POST /v1/execute``      execute a handle with positional/named params
``DELETE /v1/query/<id>`` trip the cancellation token of an in-flight
                          execution registered under ``query_id``
``DELETE /v1/statement/<handle>``  close a statement handle
``GET /metrics``          Prometheus exposition of the engine registry
                          (exact v0.0.4 content type)
``GET /healthz``          liveness probe
========================  =================================================

Error translation is table-driven (:mod:`repro.serve.mapping`,
:data:`repro.errors.HTTP_STATUS_BY_CODE`): admission rejections surface as
429/503, deadline/cancellation as 408/499 with partial progress, analysis
rejections as 400 — the body always carries the engine's own error code.

Connections are ``HTTP/1.0`` (one request per connection, no keep-alive):
handler threads exit as soon as the response is written, which keeps
``stop()`` — ``shutdown()`` + ``server_close()`` with ``block_on_close`` —
a bounded join of everything the server ever spawned.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from socketserver import ThreadingMixIn
from typing import TYPE_CHECKING, Any

from repro.core.concurrency import make_lock
from repro.errors import ProteusError
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.serve.mapping import engine_error_response, protocol_error_response
from repro.serve.protocol import (
    BadRequestError,
    QueryRequest,
    encode_result,
    json_default,
    parse_body,
    parse_query_request,
)
from repro.serve.registry import (
    ActiveQueryRegistry,
    DuplicateQueryIdError,
    StatementRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import PreparedQuery, ProteusEngine

JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class _ProteusHTTPServer(ThreadingMixIn, HTTPServer):
    """Threaded listener; joins every handler thread on ``server_close``."""

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    #: Back-reference installed by :class:`ProteusServer` right after
    #: construction, before the listener thread starts.
    proteus: "ProteusServer"


class _Handler(BaseHTTPRequestHandler):
    server_version = "proteus-serve/1.0"
    protocol_version = "HTTP/1.0"

    # -- plumbing ----------------------------------------------------------

    def handle(self) -> None:
        # Name the per-connection thread so shutdown leak checks (and the
        # sanitizer's held-lock dumps) can attribute it to the server.
        thread = threading.current_thread()
        if thread is not threading.main_thread():
            thread.name = f"proteus-http-{thread.ident}"
        super().handle()

    def log_message(self, format: str, *args: Any) -> None:
        # Request accounting lives in the metrics registry
        # (proteus_http_requests_total), not on stderr.
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, endpoint: str, status: int, payload: dict) -> None:
        body = json.dumps(payload, default=json_default).encode("utf-8")
        # Count before writing: once the client has the response bytes it
        # must be able to observe its own request in a /metrics scrape.
        self.server.proteus.record_request(endpoint, status)
        self._send(status, body, JSON_CONTENT_TYPE)

    def _read_json(self) -> dict:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise BadRequestError("request requires a Content-Length header")
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            return parse_body(json.loads(raw.decode("utf-8") or "null"))
        except (ValueError, UnicodeDecodeError):
            raise BadRequestError("request body is not valid JSON")

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json("/healthz", 200, {"status": "ok"})
        elif self.path == "/metrics":
            self.server.proteus.record_request("/metrics", 200)
            body = self.server.proteus.engine.metrics.render_prometheus()
            self._send(200, body.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
        else:
            status, payload = protocol_error_response(
                404, "SRV002", f"unknown endpoint {self.path!r}"
            )
            self._send_json(self.path, status, payload)

    def do_POST(self) -> None:
        route = {
            "/v1/query": self._post_query,
            "/v1/prepare": self._post_prepare,
            "/v1/execute": self._post_execute,
        }.get(self.path)
        if route is None:
            status, payload = protocol_error_response(
                404, "SRV002", f"unknown endpoint {self.path!r}"
            )
            self._send_json(self.path, status, payload)
            return
        try:
            status, payload = route(self._read_json())
        except BadRequestError as exc:
            status, payload = protocol_error_response(400, "SRV001", str(exc))
        except DuplicateQueryIdError as exc:
            status, payload = protocol_error_response(409, "SRV004", str(exc))
        except ProteusError as exc:
            status, payload = engine_error_response(exc)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status, payload = protocol_error_response(
                500, "internal", f"{type(exc).__name__}: {exc}"
            )
        self._send_json(self.path, status, payload)

    def do_DELETE(self) -> None:
        proteus = self.server.proteus
        if self.path.startswith("/v1/query/"):
            query_id = self.path[len("/v1/query/"):]
            if proteus.queries.cancel(query_id):
                self._send_json("/v1/query/<id>", 200, {"cancelled": True})
            else:
                status, payload = protocol_error_response(
                    404, "SRV002", f"no in-flight query with id {query_id!r}"
                )
                self._send_json("/v1/query/<id>", status, payload)
        elif self.path.startswith("/v1/statement/"):
            handle = self.path[len("/v1/statement/"):]
            if proteus.statements.close(handle):
                self._send_json("/v1/statement/<handle>", 200, {"closed": True})
            else:
                status, payload = protocol_error_response(
                    404, "SRV003", f"unknown statement handle {handle!r}"
                )
                self._send_json("/v1/statement/<handle>", status, payload)
        else:
            status, payload = protocol_error_response(
                404, "SRV002", f"unknown endpoint {self.path!r}"
            )
            self._send_json(self.path, status, payload)

    # -- endpoints ---------------------------------------------------------

    def _post_query(self, body: dict) -> tuple[int, dict]:
        request = parse_query_request(body, require="query")
        # The per-text prepared cache: repeated texts share one PreparedQuery
        # (and its compiled program) across every client.
        prepared = self.server.proteus.engine._prepare_cached(request.query)
        return self._run(prepared, request)

    def _post_prepare(self, body: dict) -> tuple[int, dict]:
        request = parse_query_request(body, require="query")
        proteus = self.server.proteus
        prepared = proteus.engine.prepare(request.query)
        handle = proteus.statements.create(prepared)
        return 200, {"handle": handle, "parameters": prepared.parameters}

    def _post_execute(self, body: dict) -> tuple[int, dict]:
        request = parse_query_request(body, require="handle")
        proteus = self.server.proteus
        prepared = proteus.statements.get(request.handle)
        if prepared is None:
            return protocol_error_response(
                404, "SRV003", f"unknown statement handle {request.handle!r}"
            )
        return self._run(prepared, request)

    def _run(
        self, prepared: "PreparedQuery", request: QueryRequest
    ) -> tuple[int, dict]:
        proteus = self.server.proteus
        token = None
        try:
            if request.query_id is not None:
                token = proteus.queries.register(request.query_id)
            result = prepared.execute(
                *request.args,
                timeout=request.timeout_seconds,
                cancel=token,
                **request.params,
            )
            return 200, encode_result(result)
        finally:
            if token is not None:
                proteus.queries.release(request.query_id, token)


class ProteusServer:
    """Threaded HTTP front end over one shared :class:`ProteusEngine`.

    Usage::

        server = ProteusServer(engine)          # port=0 -> ephemeral port
        server.start()
        ... urllib / any HTTP client against server.url ...
        server.stop()                           # bounded: joins all threads

    Also usable as a context manager.  The server is single-use: once
    stopped, the listening socket is closed and ``start()`` raises.
    """

    def __init__(
        self, engine: "ProteusEngine", host: str = "127.0.0.1", port: int = 0
    ):
        self.engine = engine
        self.statements = StatementRegistry()
        self.queries = ActiveQueryRegistry()
        self._lock = make_lock("ProteusServer._lock")
        self._thread: threading.Thread | None = None
        self._httpd = _ProteusHTTPServer((host, port), _Handler)
        self._httpd.proteus = self
        self._requests = engine.metrics.counter(
            "proteus_http_requests_total",
            "HTTP requests served, labeled by endpoint and status.",
        )
        self._register_gauges()

    # -- metrics -----------------------------------------------------------

    def _register_gauges(self) -> None:
        metrics = self.engine.metrics
        if not metrics.enabled:
            return
        statements = self.statements
        queries = self.queries
        metrics.gauge_callback(
            "proteus_server_statements",
            lambda: float(statements.count()),
            "Open server-side prepared-statement handles.",
        )
        metrics.gauge_callback(
            "proteus_server_active_queries",
            lambda: float(queries.count()),
            "In-flight HTTP executions holding a cancellation token.",
        )

    def record_request(self, endpoint: str, status: int) -> None:
        if self.engine.metrics.enabled:
            self._requests.inc(endpoint=endpoint, status=str(status))

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ProteusServer":
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("server is already running")
            thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name=f"proteus-http-serve-{self.port}",
                daemon=False,
            )
            self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()  # block_on_close: joins handler threads
        thread.join()

    def __enter__(self) -> "ProteusServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
