"""TPC-H-derived synthetic data generator (§7.1).

The paper's micro-benchmarks run over the TPC-H ``lineitem`` and ``orders``
tables at SF10/SF100, materialized as JSON files and as binary column files,
with the rows shuffled to avoid interesting orders.  This module generates the
same schemas deterministically at laptop scale and materializes them in every
format the experiments need:

* CSV files,
* JSON object streams (optionally with the same field order in every object,
  which lets the structural index use its fixed-schema specialization),
* denormalized JSON (each order embeds its lineitems) for the unnest queries,
* binary column tables and binary row tables.

``scale`` 1.0 corresponds to 6,000 lineitems / 1,500 orders (the paper's SF10
is 60 M / 15 M; absolute sizes are out of scope, relative behaviour is not).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.core import types as t
from repro.storage.binary_format import write_column_table, write_row_table

LINEITEMS_PER_SCALE = 6_000
ORDERS_PER_SCALE = 1_500

LINEITEM_SPEC = {
    "l_orderkey": "int",
    "l_linenumber": "int",
    "l_quantity": "float",
    "l_extendedprice": "float",
    "l_discount": "float",
    "l_tax": "float",
    "l_partkey": "int",
    "l_suppkey": "int",
}

ORDERS_SPEC = {
    "o_orderkey": "int",
    "o_custkey": "int",
    "o_totalprice": "float",
    "o_orderpriority": "int",
    "o_shippriority": "int",
}

LINEITEM_SCHEMA = t.make_schema(LINEITEM_SPEC)

ORDERS_SCHEMA = t.make_schema(ORDERS_SPEC)

#: Schema of the denormalized orders file (each order embeds its lineitems).
DENORMALIZED_ORDERS_SCHEMA = t.make_schema({**ORDERS_SPEC, "lineitems": [LINEITEM_SPEC]})


@dataclass
class TpchTables:
    """Generated TPC-H columns plus the key bound used to pick selectivities."""

    lineitem: dict[str, np.ndarray]
    orders: dict[str, np.ndarray]
    num_orders: int
    num_lineitems: int

    def orderkey_threshold(self, selectivity: float) -> int:
        """The ``l_orderkey < X`` bound giving roughly ``selectivity``."""
        return max(1, int(round(selectivity * self.num_orders)) + 1)


def generate(scale: float = 0.1, seed: int = 42) -> TpchTables:
    """Generate shuffled lineitem/orders columns at the given scale."""
    rng = np.random.RandomState(seed)
    num_lineitems = max(int(LINEITEMS_PER_SCALE * scale), 10)
    num_orders = max(int(ORDERS_PER_SCALE * scale), 4)

    orderkeys = rng.randint(1, num_orders + 1, size=num_lineitems)
    quantity = rng.randint(1, 51, size=num_lineitems).astype(np.float64)
    extendedprice = np.round(quantity * rng.uniform(900, 1100, size=num_lineitems), 2)
    lineitem = {
        "l_orderkey": orderkeys.astype(np.int64),
        "l_linenumber": rng.randint(1, 8, size=num_lineitems).astype(np.int64),
        "l_quantity": quantity,
        "l_extendedprice": extendedprice,
        "l_discount": np.round(rng.uniform(0.0, 0.1, size=num_lineitems), 2),
        "l_tax": np.round(rng.uniform(0.0, 0.08, size=num_lineitems), 2),
        "l_partkey": rng.randint(1, 200_000, size=num_lineitems).astype(np.int64),
        "l_suppkey": rng.randint(1, 10_000, size=num_lineitems).astype(np.int64),
    }
    order_keys = np.arange(1, num_orders + 1, dtype=np.int64)
    orders = {
        "o_orderkey": order_keys,
        "o_custkey": rng.randint(1, max(num_orders // 10, 2), size=num_orders).astype(np.int64),
        "o_totalprice": np.round(rng.uniform(1_000, 500_000, size=num_orders), 2),
        "o_orderpriority": rng.randint(1, 6, size=num_orders).astype(np.int64),
        "o_shippriority": rng.randint(0, 2, size=num_orders).astype(np.int64),
    }

    # Shuffle both tables (the paper shuffles file contents to avoid noise
    # from interesting orders).
    lineitem_order = rng.permutation(num_lineitems)
    orders_order = rng.permutation(num_orders)
    lineitem = {name: values[lineitem_order] for name, values in lineitem.items()}
    orders = {name: values[orders_order] for name, values in orders.items()}
    return TpchTables(lineitem, orders, num_orders, num_lineitems)


# ---------------------------------------------------------------------------
# Materialization in the formats the experiments need
# ---------------------------------------------------------------------------


def write_csv(path: str, columns: dict[str, np.ndarray]) -> str:
    """Write columns as a CSV file with a header row."""
    names = list(columns)
    count = len(columns[names[0]]) if names else 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(",".join(names) + "\n")
        for row in range(count):
            handle.write(",".join(_csv_value(columns[name][row]) for name in names) + "\n")
    return path


def write_json(
    path: str,
    columns: dict[str, np.ndarray],
    shuffle_field_order: bool = False,
    seed: int = 7,
) -> str:
    """Write columns as a JSON object stream (one object per line)."""
    rng = np.random.RandomState(seed)
    names = list(columns)
    count = len(columns[names[0]]) if names else 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in range(count):
            ordered = list(names)
            if shuffle_field_order:
                rng.shuffle(ordered)
            record = {name: _json_value(columns[name][row]) for name in ordered}
            handle.write(json.dumps(record) + "\n")
    return path


def write_denormalized_json(path: str, tables: TpchTables) -> str:
    """Write orders with their lineitems embedded as a nested array
    (the document-store-friendly layout used by the unnest experiment)."""
    lineitems_by_order: dict[int, list[dict]] = {}
    lineitem = tables.lineitem
    count = len(lineitem["l_orderkey"])
    for row in range(count):
        record = {name: _json_value(values[row]) for name, values in lineitem.items()}
        lineitems_by_order.setdefault(int(lineitem["l_orderkey"][row]), []).append(record)
    orders = tables.orders
    with open(path, "w", encoding="utf-8") as handle:
        for row in range(len(orders["o_orderkey"])):
            key = int(orders["o_orderkey"][row])
            record = {name: _json_value(values[row]) for name, values in orders.items()}
            record["lineitems"] = lineitems_by_order.get(key, [])
            handle.write(json.dumps(record) + "\n")
    return path


def write_binary_columns(directory: str, columns: dict[str, np.ndarray],
                         schema: t.RecordType) -> str:
    write_column_table(directory, columns, schema)
    return directory


def write_binary_rows(path: str, columns: dict[str, np.ndarray],
                      schema: t.RecordType) -> str:
    write_row_table(path, columns, schema)
    return path


@dataclass
class TpchFiles:
    """Paths of every materialization of one generated TPC-H instance."""

    lineitem_csv: str
    orders_csv: str
    lineitem_json: str
    orders_json: str
    orders_denormalized_json: str
    lineitem_columns: str
    orders_columns: str
    tables: TpchTables


def materialize(directory: str, scale: float = 0.1, seed: int = 42) -> TpchFiles:
    """Generate and write every format used by the benchmarks into
    ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    tables = generate(scale=scale, seed=seed)
    files = TpchFiles(
        lineitem_csv=write_csv(os.path.join(directory, "lineitem.csv"), tables.lineitem),
        orders_csv=write_csv(os.path.join(directory, "orders.csv"), tables.orders),
        lineitem_json=write_json(os.path.join(directory, "lineitem.json"), tables.lineitem),
        orders_json=write_json(os.path.join(directory, "orders.json"), tables.orders),
        orders_denormalized_json=write_denormalized_json(
            os.path.join(directory, "orders_denorm.json"), tables
        ),
        lineitem_columns=write_binary_columns(
            os.path.join(directory, "lineitem_columns"), tables.lineitem, LINEITEM_SCHEMA
        ),
        orders_columns=write_binary_columns(
            os.path.join(directory, "orders_columns"), tables.orders, ORDERS_SCHEMA
        ),
        tables=tables,
    )
    return files


def _csv_value(value) -> str:
    if isinstance(value, (np.floating, float)):
        return f"{float(value):.2f}"
    return str(value)


def _json_value(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value
