"""Engine-independent query specifications.

The benchmark harness runs the *same* query against Proteus and against every
simulated comparator system.  Proteus consumes SQL / comprehension text, while
the baselines interpret their own storage; to keep a single source of truth,
each benchmark query is described once as a :class:`QuerySpec` that

* renders to SQL (flat queries) or to the comprehension syntax (unnest
  queries) for Proteus, and
* is interpreted directly by the baseline engines in
  :mod:`repro.baselines`.

The specification language covers exactly the query shapes of the paper's
evaluation: conjunctive filters, aggregate or field projections, one optional
equi-join, one optional unnest of a nested collection, and an optional
GROUP BY.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

FieldPath = tuple[str, ...]

COMPARISON_OPS = ("<", "<=", ">", ">=", "=", "!=")
AGGREGATES = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class TableRef:
    """A dataset participating in the query, with its alias."""

    dataset: str
    alias: str


@dataclass(frozen=True)
class FilterSpec:
    """A conjunctive filter ``alias.path op value``."""

    alias: str
    path: FieldPath
    op: str
    value: object

    def field_text(self) -> str:
        return f"{self.alias}.{'.'.join(self.path)}"


@dataclass(frozen=True)
class ProjectionSpec:
    """An output column: either a plain field or an aggregate over a field."""

    output: str
    alias: str | None = None
    path: FieldPath = ()
    aggregate: str | None = None  # None means a plain field projection

    def field_text(self) -> str:
        if self.alias is None:
            return "*"
        return f"{self.alias}.{'.'.join(self.path)}"


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join between two aliases."""

    left_alias: str
    left_path: FieldPath
    right_alias: str
    right_path: FieldPath


@dataclass(frozen=True)
class UnnestSpec:
    """Unnest a nested collection of ``parent_alias`` into ``alias``."""

    parent_alias: str
    path: FieldPath
    alias: str


@dataclass(frozen=True)
class GroupBySpec:
    """A grouping key."""

    alias: str
    path: FieldPath

    def field_text(self) -> str:
        return f"{self.alias}.{'.'.join(self.path)}"


@dataclass
class QuerySpec:
    """A complete benchmark query."""

    name: str
    tables: list[TableRef]
    projections: list[ProjectionSpec]
    filters: list[FilterSpec] = field(default_factory=list)
    joins: list[JoinSpec] = field(default_factory=list)
    unnest: UnnestSpec | None = None
    group_by: list[GroupBySpec] = field(default_factory=list)

    # -- rendering for Proteus ------------------------------------------------

    def to_text(self) -> str:
        """Render the query for the Proteus engine (SQL, or comprehension
        syntax when the query unnests a collection)."""
        if self.unnest is not None:
            return self.to_comprehension()
        return self.to_sql()

    def to_sql(self) -> str:
        select_parts = []
        for projection in self.projections:
            if projection.aggregate is None:
                select_parts.append(f"{projection.field_text()} AS {projection.output}")
            elif projection.aggregate == "count" and projection.alias is None:
                select_parts.append(f"COUNT(*) AS {projection.output}")
            else:
                select_parts.append(
                    f"{projection.aggregate.upper()}({projection.field_text()}) "
                    f"AS {projection.output}"
                )
        sql = "SELECT " + ", ".join(select_parts)
        first = self.tables[0]
        sql += f" FROM {first.dataset} {first.alias}"
        joined_aliases = {first.alias}
        for table in self.tables[1:]:
            join = self._join_for(table.alias, joined_aliases)
            if join is None:
                sql += f", {table.dataset} {table.alias}"
            else:
                left = f"{join.left_alias}.{'.'.join(join.left_path)}"
                right = f"{join.right_alias}.{'.'.join(join.right_path)}"
                sql += f" JOIN {table.dataset} {table.alias} ON {left} = {right}"
            joined_aliases.add(table.alias)
        if self.filters:
            sql += " WHERE " + " AND ".join(
                f"{f.field_text()} {f.op} {_literal(f.value)}" for f in self.filters
            )
        if self.group_by:
            sql += " GROUP BY " + ", ".join(g.field_text() for g in self.group_by)
        return sql

    def to_comprehension(self) -> str:
        """Render as a comprehension (required for unnest queries)."""
        qualifiers = []
        for table in self.tables:
            qualifiers.append(f"{table.alias} <- {table.dataset}")
            if self.unnest is not None and self.unnest.parent_alias == table.alias:
                path = ".".join(self.unnest.path)
                qualifiers.append(f"{self.unnest.alias} <- {table.alias}.{path}")
        for join in self.joins:
            left = f"{join.left_alias}.{'.'.join(join.left_path)}"
            right = f"{join.right_alias}.{'.'.join(join.right_path)}"
            qualifiers.append(f"{left} = {right}")
        for filt in self.filters:
            qualifiers.append(f"{filt.field_text()} {filt.op} {_literal(filt.value)}")
        body = "for { " + ", ".join(qualifiers) + " }"
        if self.group_by:
            raise ValueError(
                "group-by unnest queries are rendered via SQL in this reproduction"
            )
        if len(self.projections) == 1 and self.projections[0].aggregate is not None:
            projection = self.projections[0]
            if projection.aggregate == "count" and projection.alias is None:
                return body + " yield count"
            return body + f" yield {projection.aggregate} ({projection.field_text()})"
        columns = ", ".join(
            f"{p.field_text()} as {p.output}" for p in self.projections
        )
        return body + f" yield bag ({columns})"

    # -- helpers ----------------------------------------------------------------

    def _join_for(self, alias: str, joined: set[str]) -> JoinSpec | None:
        for join in self.joins:
            if join.right_alias == alias and join.left_alias in joined:
                return join
            if join.left_alias == alias and join.right_alias in joined:
                return JoinSpec(join.right_alias, join.right_path,
                                join.left_alias, join.left_path)
        return None

    def aliases(self) -> list[str]:
        names = [table.alias for table in self.tables]
        if self.unnest is not None:
            names.append(self.unnest.alias)
        return names

    def datasets(self) -> list[str]:
        return [table.dataset for table in self.tables]

    def is_aggregate(self) -> bool:
        return any(p.aggregate is not None for p in self.projections)


def _literal(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "") + "'"
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value)


def count_star(output: str = "cnt") -> ProjectionSpec:
    """Convenience: a COUNT(*) projection."""
    return ProjectionSpec(output=output, alias=None, path=(), aggregate="count")


def agg(func: str, alias: str, *path: str, output: str | None = None) -> ProjectionSpec:
    """Convenience: an aggregate projection over ``alias.path``."""
    name = output or f"{func}_{'_'.join(path)}"
    return ProjectionSpec(output=name, alias=alias, path=tuple(path), aggregate=func)


def col(alias: str, *path: str, output: str | None = None) -> ProjectionSpec:
    """Convenience: a plain field projection."""
    name = output or path[-1]
    return ProjectionSpec(output=name, alias=alias, path=tuple(path), aggregate=None)


def filt(alias: str, path: str | Sequence[str], op: str, value: object) -> FilterSpec:
    """Convenience: a filter over a (possibly dotted) field path."""
    parts = tuple(path.split(".")) if isinstance(path, str) else tuple(path)
    return FilterSpec(alias=alias, path=parts, op=op, value=value)
