"""Workload generators and query templates for the reproduced experiments."""
