"""Query templates of the TPC-H micro-benchmarks (§7.1, Figures 5–13).

Each figure of the synthetic evaluation instantiates one of four templates at
selectivities 10 %, 20 %, 50 % and 100 %:

* **projections** — ``SELECT AGG(val1),...,AGG(valN) FROM lineitem WHERE
  l_orderkey < X`` with variants computing COUNT, MAX, and four aggregates,
* **selections** — ``SELECT COUNT(*) FROM lineitem WHERE val1<X AND ...`` with
  one, three and four predicates,
* **joins** — ``SELECT AGG(o.val1),... FROM orders JOIN lineitem ON
  o_orderkey = l_orderkey WHERE l_orderkey < X`` with COUNT / MAX / two
  aggregates, plus an unnest variant over denormalized JSON,
* **group-bys** — ``SELECT AGG(val1),... FROM lineitem WHERE l_orderkey < X
  GROUP BY l_linenumber`` with one, three and four aggregates.

The selectivity is controlled through the ``l_orderkey < X`` bound
(``l_orderkey`` is uniform over the order keys); additional predicates are
non-selective but still evaluated, matching the paper's intent of measuring
per-predicate evaluation cost.
"""

from __future__ import annotations

from repro.workloads.query_spec import (
    GroupBySpec,
    JoinSpec,
    QuerySpec,
    TableRef,
    UnnestSpec,
    agg,
    col,
    count_star,
    filt,
)

SELECTIVITIES = (0.1, 0.2, 0.5, 1.0)

PROJECTION_VARIANTS = ("count", "max", "4agg")
SELECTION_VARIANTS = (1, 3, 4)
JOIN_VARIANTS = ("count", "max", "2agg")
GROUPBY_VARIANTS = (1, 3, 4)


def projection_query(
    dataset: str, threshold: int, variant: str, selectivity: float
) -> QuerySpec:
    """Figure 5/6 template: aggregate projections over lineitem."""
    table = TableRef(dataset, "l")
    filters = [filt("l", "l_orderkey", "<", threshold)]
    if variant == "count":
        projections = [count_star()]
    elif variant == "max":
        projections = [agg("max", "l", "l_extendedprice")]
    elif variant == "4agg":
        projections = [
            count_star(),
            agg("max", "l", "l_extendedprice"),
            agg("max", "l", "l_quantity"),
            count_star(output="cnt2"),
        ]
    else:
        raise ValueError(f"unknown projection variant {variant!r}")
    return QuerySpec(
        name=f"projection_{variant}_{int(selectivity * 100)}",
        tables=[table],
        projections=projections,
        filters=filters,
    )


def selection_query(
    dataset: str, threshold: int, num_predicates: int, selectivity: float
) -> QuerySpec:
    """Figure 7/8 template: COUNT under one to four predicates."""
    table = TableRef(dataset, "l")
    filters = [filt("l", "l_orderkey", "<", threshold)]
    extra = [
        filt("l", "l_quantity", "<", 51.0),
        filt("l", "l_discount", "<", 1.0),
        filt("l", "l_tax", "<", 1.0),
    ]
    filters.extend(extra[: max(num_predicates - 1, 0)])
    return QuerySpec(
        name=f"selection_{num_predicates}pred_{int(selectivity * 100)}",
        tables=[table],
        projections=[count_star()],
        filters=filters,
    )


def join_query(
    orders_dataset: str,
    lineitem_dataset: str,
    threshold: int,
    variant: str,
    selectivity: float,
) -> QuerySpec:
    """Figure 9/10 template: orders ⋈ lineitem with aggregate output."""
    orders = TableRef(orders_dataset, "o")
    lineitem = TableRef(lineitem_dataset, "l")
    if variant == "count":
        projections = [count_star()]
    elif variant == "max":
        projections = [agg("max", "o", "o_totalprice")]
    elif variant == "2agg":
        projections = [count_star(), agg("max", "o", "o_totalprice")]
    else:
        raise ValueError(f"unknown join variant {variant!r}")
    return QuerySpec(
        name=f"join_{variant}_{int(selectivity * 100)}",
        tables=[orders, lineitem],
        projections=projections,
        filters=[filt("l", "l_orderkey", "<", threshold)],
        joins=[JoinSpec("o", ("o_orderkey",), "l", ("l_orderkey",))],
    )


def unnest_query(denormalized_dataset: str, threshold: int, selectivity: float) -> QuerySpec:
    """Figure 9 "Unnest" template: count lineitems embedded in order objects."""
    orders = TableRef(denormalized_dataset, "o")
    return QuerySpec(
        name=f"unnest_count_{int(selectivity * 100)}",
        tables=[orders],
        projections=[count_star()],
        filters=[filt("li", "l_orderkey", "<", threshold)],
        unnest=UnnestSpec("o", ("lineitems",), "li"),
    )


def groupby_query(
    dataset: str, threshold: int, num_aggregates: int, selectivity: float
) -> QuerySpec:
    """Figure 11/12 template: GROUP BY l_linenumber with 1/3/4 aggregates."""
    table = TableRef(dataset, "l")
    projections = [col("l", "l_linenumber"), count_star()]
    extra = [
        agg("max", "l", "l_extendedprice"),
        agg("max", "l", "l_quantity"),
        agg("sum", "l", "l_discount"),
    ]
    projections.extend(extra[: max(num_aggregates - 1, 0)])
    return QuerySpec(
        name=f"groupby_{num_aggregates}agg_{int(selectivity * 100)}",
        tables=[table],
        projections=projections,
        filters=[filt("l", "l_orderkey", "<", threshold)],
        group_by=[GroupBySpec("l", ("l_linenumber",))],
    )
