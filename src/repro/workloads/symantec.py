"""Symantec-like spam-analysis workload (§7.2).

The paper's real-world workload analyses spam e-mail data: periodically
arriving JSON files collected by spam traps (mail body language, origin IP and
country, responsible bot, ...), CSV outputs of classification/clustering
workflows (one record per e-mail with assigned classes and scores), and a
pre-existing relational table in a DBMS.  Fifty queries touch the datasets in
progressively mixed combinations: BIN, CSV, JSON, Bin⋈CSV, Bin⋈JSON, CSV⋈JSON
and Bin⋈CSV⋈JSON, performing selections, 2- and 3-way joins, unnests of JSON
arrays, groupings and aggregates, with projectivity 1–9 fields and selectivity
roughly 1–25 %.

The original feed is proprietary, so this module generates a synthetic
equivalent with the same shape (same formats, arbitrary JSON field order,
shared ``mail_id`` join key, a nested ``urls`` array for unnests) and defines
the 50-query workload over it as :class:`~repro.workloads.query_spec.QuerySpec`
objects grouped into the same seven phases as Figure 14.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.core import types as t
from repro.storage.binary_format import write_column_table
from repro.workloads.query_spec import (
    FilterSpec,
    GroupBySpec,
    JoinSpec,
    ProjectionSpec,
    QuerySpec,
    TableRef,
    UnnestSpec,
    agg,
    col,
    count_star,
    filt,
)

_COUNTRIES = ["US", "CN", "RU", "BR", "IN", "DE", "FR", "GB", "NL", "CH"]
_LANGUAGES = ["en", "ru", "zh", "es", "pt", "de"]
_BOTS = ["rustock", "cutwail", "grum", "kelihos", "necurs", "unknown"]
_LABELS = ["pharma", "phishing", "malware", "dating", "casino", "replica"]

SPAM_BINARY_SCHEMA = t.make_schema(
    {
        "record_id": "int",
        "mail_id": "int",
        "day": "int",
        "src_asn": "int",
        "bytes": "int",
        "threat_level": "int",
        "customer": "int",
    }
)

#: Schema of the spam-trap JSON feed (arbitrary field order, nested origin
#: record, nested ``urls`` array).
SPAM_JSON_SCHEMA = t.make_schema(
    {
        "mail_id": "int",
        "lang": "string",
        "origin": {"ip": "string", "country": "string"},
        "bot": "string",
        "size_bytes": "int",
        "day": "int",
        "subject_len": "int",
        "body_words": "int",
        "urls": [{"domain": "string", "score": "float"}],
    }
)

#: Schema of the classification/clustering CSV output.
CLASSIFICATION_CSV_SCHEMA = t.make_schema(
    {
        "row_id": "int",
        "mail_id": "int",
        "class_spam": "int",
        "class_campaign": "int",
        "score": "float",
        "day": "int",
        "label": "string",
        "cluster": "int",
    }
)


@dataclass
class SymantecFiles:
    """Paths and sizes of one generated Symantec-like instance."""

    json_path: str
    csv_path: str
    binary_dir: str
    num_json: int
    num_csv: int
    num_binary: int
    num_days: int = 30


def materialize(
    directory: str,
    num_json: int = 2_000,
    num_csv: int = 8_000,
    num_binary: int = 10_000,
    num_days: int = 30,
    seed: int = 1234,
) -> SymantecFiles:
    """Generate the three datasets of the workload into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    rng = np.random.RandomState(seed)

    json_path = os.path.join(directory, "spam_mails.json")
    _write_spam_json(json_path, num_json, num_days, rng)

    csv_path = os.path.join(directory, "classification.csv")
    _write_classification_csv(csv_path, num_csv, num_json, num_days, rng)

    binary_dir = os.path.join(directory, "mail_log_columns")
    _write_binary_table(binary_dir, num_binary, num_json, num_days, rng)

    return SymantecFiles(
        json_path=json_path,
        csv_path=csv_path,
        binary_dir=binary_dir,
        num_json=num_json,
        num_csv=num_csv,
        num_binary=num_binary,
        num_days=num_days,
    )


def _write_spam_json(path: str, count: int, num_days: int, rng: np.random.RandomState) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for mail_id in range(count):
            urls = [
                {
                    "domain": f"d{int(rng.randint(0, 500))}.example",
                    "score": float(np.round(rng.uniform(0, 1), 3)),
                }
                for _ in range(int(rng.randint(0, 4)))
            ]
            record = {
                "mail_id": int(mail_id),
                "lang": _LANGUAGES[int(rng.randint(0, len(_LANGUAGES)))],
                "origin": {
                    "ip": f"10.{int(rng.randint(0, 256))}.{int(rng.randint(0, 256))}."
                          f"{int(rng.randint(0, 256))}",
                    "country": _COUNTRIES[int(rng.randint(0, len(_COUNTRIES)))],
                },
                "bot": _BOTS[int(rng.randint(0, len(_BOTS)))],
                "size_bytes": int(rng.randint(200, 100_000)),
                "day": int(rng.randint(0, num_days)),
                "subject_len": int(rng.randint(5, 120)),
                "body_words": int(rng.randint(10, 2_000)),
                "urls": urls,
            }
            # Arbitrary field order per object, as in the real feed.
            names = list(record)
            rng.shuffle(names)
            shuffled = {name: record[name] for name in names}
            handle.write(json.dumps(shuffled) + "\n")


def _write_classification_csv(
    path: str, count: int, num_mails: int, num_days: int, rng: np.random.RandomState
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "row_id,mail_id,class_spam,class_campaign,score,day,label,cluster\n"
        )
        for row in range(count):
            handle.write(
                f"{row},"
                f"{int(rng.randint(0, max(num_mails, 1)))},"
                f"{int(rng.randint(0, 2))},"
                f"{int(rng.randint(0, 40))},"
                f"{float(np.round(rng.uniform(0, 1), 4))},"
                f"{int(rng.randint(0, num_days))},"
                f"{_LABELS[int(rng.randint(0, len(_LABELS)))]},"
                f"{int(rng.randint(0, 100))}\n"
            )


def _write_binary_table(
    directory: str, count: int, num_mails: int, num_days: int, rng: np.random.RandomState
) -> None:
    columns = {
        "record_id": np.arange(count, dtype=np.int64),
        "mail_id": rng.randint(0, max(num_mails, 1), size=count).astype(np.int64),
        "day": rng.randint(0, num_days, size=count).astype(np.int64),
        "src_asn": rng.randint(1, 65_000, size=count).astype(np.int64),
        "bytes": rng.randint(200, 1_000_000, size=count).astype(np.int64),
        "threat_level": rng.randint(0, 5, size=count).astype(np.int64),
        "customer": rng.randint(0, 50, size=count).astype(np.int64),
    }
    write_column_table(directory, columns, SPAM_BINARY_SCHEMA)


# ---------------------------------------------------------------------------
# The 50-query workload
# ---------------------------------------------------------------------------

#: Dataset aliases used by every query.
BIN, CSV, JSN = "m", "c", "j"

#: Phase labels, in the order of Figure 14.
PHASES = ("BIN", "CSV", "JSON", "BinCSV", "BinJSON", "CSVJSON", "BINCSVJSON")


@dataclass
class WorkloadQuery:
    """One query of the Symantec workload: its phase and its specification."""

    index: int
    phase: str
    spec: QuerySpec


def symantec_workload(files: SymantecFiles) -> list[WorkloadQuery]:
    """Build the 50-query workload over a generated instance.

    Dataset names used: ``mail_log`` (binary), ``classification`` (CSV) and
    ``spam_mails`` (JSON); thresholds are scaled from the instance sizes so
    selectivities stay in the paper's 1–25 % range.
    """
    bin_table = TableRef("mail_log", BIN)
    csv_table = TableRef("classification", CSV)
    json_table = TableRef("spam_mails", JSN)
    day_cut = max(files.num_days // 4, 1)
    queries: list[QuerySpec] = []

    # --- Q1-Q8: binary only ----------------------------------------------------
    queries += [
        QuerySpec("Q1", [bin_table], [count_star()], [filt(BIN, "day", "<", day_cut)]),
        QuerySpec("Q2", [bin_table], [agg("max", BIN, "bytes"), count_star()],
                  [filt(BIN, "threat_level", ">=", 3)]),
        QuerySpec("Q3", [bin_table], [agg("sum", BIN, "bytes"), agg("avg", BIN, "bytes")],
                  [filt(BIN, "day", "<", day_cut), filt(BIN, "threat_level", ">=", 2)]),
        QuerySpec("Q4", [bin_table],
                  [col(BIN, "day"), count_star(), agg("max", BIN, "bytes")],
                  [filt(BIN, "threat_level", ">=", 3)],
                  group_by=[GroupBySpec(BIN, ("day",))]),
        QuerySpec("Q5", [bin_table],
                  [col(BIN, "customer"), agg("sum", BIN, "bytes")],
                  [filt(BIN, "day", "<", day_cut * 2)],
                  group_by=[GroupBySpec(BIN, ("customer",))]),
        QuerySpec("Q6", [bin_table], [agg("min", BIN, "bytes"), agg("max", BIN, "bytes"),
                                      agg("avg", BIN, "bytes"), count_star()],
                  [filt(BIN, "src_asn", "<", 10_000)]),
        QuerySpec("Q7", [bin_table],
                  [col(BIN, "threat_level"), count_star()],
                  [filt(BIN, "day", "<", day_cut)],
                  group_by=[GroupBySpec(BIN, ("threat_level",))]),
        QuerySpec("Q8", [bin_table], [count_star()],
                  [filt(BIN, "record_id", "<", max(files.num_binary // 100, 1))]),
    ]

    # --- Q9-Q15: CSV only --------------------------------------------------------
    queries += [
        QuerySpec("Q9", [csv_table], [count_star(), agg("avg", CSV, "score")],
                  [filt(CSV, "class_spam", "=", 1)]),
        QuerySpec("Q10", [csv_table], [agg("max", CSV, "score"), count_star()],
                  [filt(CSV, "day", "<", day_cut)]),
        QuerySpec("Q11", [csv_table], [agg("sum", CSV, "score")],
                  [filt(CSV, "class_campaign", "<", 10)]),
        QuerySpec("Q12", [csv_table], [count_star()],
                  [filt(CSV, "label", "=", "pharma"), filt(CSV, "score", ">", 0.5)]),
        QuerySpec("Q13", [csv_table],
                  [col(CSV, "label"), count_star()],
                  [filt(CSV, "class_spam", "=", 1)],
                  group_by=[GroupBySpec(CSV, ("label",))]),
        QuerySpec("Q14", [csv_table],
                  [col(CSV, "day"), count_star(), agg("avg", CSV, "score")],
                  [filt(CSV, "class_spam", "=", 1)],
                  group_by=[GroupBySpec(CSV, ("day",))]),
        QuerySpec("Q15", [csv_table], [agg("min", CSV, "score"), agg("max", CSV, "score"),
                                       agg("avg", CSV, "score")],
                  [filt(CSV, "cluster", "<", 25)]),
    ]

    # --- Q16-Q25: JSON only ----------------------------------------------------------
    queries += [
        QuerySpec("Q16", [json_table], [count_star(), agg("avg", JSN, "size_bytes")],
                  [filt(JSN, "day", "<", day_cut)]),
        QuerySpec("Q17", [json_table], [agg("max", JSN, "size_bytes"), count_star()],
                  [filt(JSN, "subject_len", "<", 40)]),
        QuerySpec("Q18", [json_table], [count_star()],
                  [filt(JSN, "lang", "=", "ru"), filt(JSN, "size_bytes", ">", 1_000)]),
        QuerySpec("Q19", [json_table],
                  [col(JSN, "origin", "country"), count_star()],
                  [filt(JSN, "day", "<", day_cut * 2)],
                  group_by=[GroupBySpec(JSN, ("origin", "country"))]),
        QuerySpec("Q20", [json_table], [agg("sum", JSN, "body_words")],
                  [filt(JSN, "subject_len", ">", 60)]),
        QuerySpec("Q21", [json_table], [count_star()],
                  [filt(JSN, "bot", "=", "necurs")]),
        QuerySpec("Q22", [json_table],
                  [agg("avg", "u", "score", output="avg_url_score")],
                  [],
                  unnest=UnnestSpec(JSN, ("urls",), "u")),
        QuerySpec("Q23", [json_table], [count_star()],
                  [filt("u", "score", ">", 0.8)],
                  unnest=UnnestSpec(JSN, ("urls",), "u")),
        QuerySpec("Q24", [json_table],
                  [col(JSN, "bot"), count_star(), agg("avg", JSN, "size_bytes")],
                  [filt(JSN, "day", "<", day_cut * 3)],
                  group_by=[GroupBySpec(JSN, ("bot",))]),
        QuerySpec("Q25", [json_table],
                  [agg("min", JSN, "size_bytes"), agg("max", JSN, "size_bytes"),
                   agg("avg", JSN, "body_words"), count_star()],
                  [filt(JSN, "subject_len", "<", 80)]),
    ]

    # --- Q26-Q30: binary ⋈ CSV -----------------------------------------------------------
    join_bin_csv = JoinSpec(BIN, ("mail_id",), CSV, ("mail_id",))
    queries += [
        QuerySpec("Q26", [bin_table, csv_table], [count_star()],
                  [filt(BIN, "day", "<", day_cut), filt(CSV, "class_spam", "=", 1)],
                  joins=[join_bin_csv]),
        QuerySpec("Q27", [bin_table, csv_table],
                  [agg("sum", BIN, "bytes"), agg("avg", CSV, "score")],
                  [filt(BIN, "threat_level", ">=", 3)],
                  joins=[join_bin_csv]),
        QuerySpec("Q28", [bin_table, csv_table], [count_star()],
                  [filt(CSV, "label", "=", "phishing"), filt(BIN, "day", "<", day_cut * 2)],
                  joins=[join_bin_csv]),
        QuerySpec("Q29", [bin_table, csv_table], [count_star(), agg("max", CSV, "score")],
                  [filt(BIN, "record_id", "<", max(files.num_binary // 50, 1))],
                  joins=[join_bin_csv]),
        QuerySpec("Q30", [bin_table, csv_table],
                  [col(CSV, "label"), count_star()],
                  [filt(BIN, "threat_level", ">=", 2)],
                  joins=[join_bin_csv],
                  group_by=[GroupBySpec(CSV, ("label",))]),
    ]

    # --- Q31-Q35: binary ⋈ JSON --------------------------------------------------------------
    join_bin_json = JoinSpec(BIN, ("mail_id",), JSN, ("mail_id",))
    queries += [
        QuerySpec("Q31", [bin_table, json_table], [count_star()],
                  [filt(BIN, "day", "<", day_cut), filt(JSN, "lang", "=", "en")],
                  joins=[join_bin_json]),
        QuerySpec("Q32", [bin_table, json_table],
                  [agg("sum", BIN, "bytes"), agg("avg", JSN, "size_bytes")],
                  [filt(JSN, "subject_len", "<", 50)],
                  joins=[join_bin_json]),
        QuerySpec("Q33", [bin_table, json_table],
                  [col(JSN, "origin", "country"), count_star()],
                  [filt(BIN, "threat_level", ">=", 3)],
                  joins=[join_bin_json],
                  group_by=[GroupBySpec(JSN, ("origin", "country"))]),
        QuerySpec("Q34", [bin_table, json_table], [count_star(), agg("max", BIN, "bytes")],
                  [filt(JSN, "bot", "=", "rustock")],
                  joins=[join_bin_json]),
        QuerySpec("Q35", [bin_table, json_table],
                  [agg("avg", JSN, "body_words"), count_star()],
                  [filt(BIN, "day", "<", day_cut * 2), filt(JSN, "size_bytes", ">", 5_000)],
                  joins=[join_bin_json]),
    ]

    # --- Q36-Q40: CSV ⋈ JSON -------------------------------------------------------------------
    join_csv_json = JoinSpec(CSV, ("mail_id",), JSN, ("mail_id",))
    queries += [
        QuerySpec("Q36", [csv_table, json_table], [count_star()],
                  [filt(CSV, "class_spam", "=", 1), filt(JSN, "day", "<", day_cut)],
                  joins=[join_csv_json]),
        QuerySpec("Q37", [csv_table, json_table],
                  [agg("avg", CSV, "score"), agg("avg", JSN, "size_bytes")],
                  [filt(JSN, "lang", "=", "en")],
                  joins=[join_csv_json]),
        QuerySpec("Q38", [csv_table, json_table],
                  [col(JSN, "bot"), count_star()],
                  [filt(CSV, "score", ">", 0.7)],
                  joins=[join_csv_json],
                  group_by=[GroupBySpec(JSN, ("bot",))]),
        QuerySpec("Q39", [csv_table, json_table], [count_star(), agg("max", CSV, "score")],
                  [filt(JSN, "subject_len", "<", 30)],
                  joins=[join_csv_json]),
        QuerySpec("Q40", [csv_table, json_table],
                  [agg("sum", CSV, "score"), count_star()],
                  [filt(CSV, "class_campaign", "<", 5), filt(JSN, "day", "<", day_cut * 2)],
                  joins=[join_csv_json]),
    ]

    # --- Q41-Q50: binary ⋈ CSV ⋈ JSON ------------------------------------------------------------
    three_way = [join_bin_csv, join_bin_json]
    queries += [
        QuerySpec("Q41", [bin_table, csv_table, json_table], [count_star()],
                  [filt(BIN, "day", "<", day_cut), filt(CSV, "class_spam", "=", 1)],
                  joins=list(three_way)),
        QuerySpec("Q42", [bin_table, csv_table, json_table],
                  [agg("sum", BIN, "bytes"), agg("avg", CSV, "score")],
                  [filt(JSN, "lang", "=", "en")],
                  joins=list(three_way)),
        QuerySpec("Q43", [bin_table, csv_table, json_table],
                  [col(JSN, "origin", "country"), count_star()],
                  [filt(BIN, "threat_level", ">=", 3)],
                  joins=list(three_way),
                  group_by=[GroupBySpec(JSN, ("origin", "country"))]),
        QuerySpec("Q44", [bin_table, csv_table, json_table],
                  [count_star(), agg("max", JSN, "size_bytes")],
                  [filt(CSV, "label", "=", "malware")],
                  joins=list(three_way)),
        QuerySpec("Q45", [bin_table, csv_table, json_table],
                  [agg("avg", JSN, "body_words"), agg("avg", CSV, "score"), count_star()],
                  [filt(BIN, "day", "<", day_cut * 2)],
                  joins=list(three_way)),
        QuerySpec("Q46", [bin_table, csv_table, json_table], [count_star()],
                  [filt(JSN, "bot", "=", "cutwail"), filt(CSV, "class_spam", "=", 1)],
                  joins=list(three_way)),
        QuerySpec("Q47", [bin_table, csv_table, json_table],
                  [col(CSV, "label"), count_star(), agg("sum", BIN, "bytes")],
                  [filt(JSN, "day", "<", day_cut * 3)],
                  joins=list(three_way),
                  group_by=[GroupBySpec(CSV, ("label",))]),
        QuerySpec("Q48", [bin_table, csv_table, json_table],
                  [agg("max", BIN, "bytes"), agg("max", CSV, "score"),
                   agg("max", JSN, "size_bytes")],
                  [filt(BIN, "threat_level", ">=", 2)],
                  joins=list(three_way)),
        QuerySpec("Q49", [bin_table, csv_table, json_table], [count_star()],
                  [filt(CSV, "score", ">", 0.9), filt(JSN, "subject_len", "<", 40)],
                  joins=list(three_way)),
        QuerySpec("Q50", [bin_table, csv_table, json_table],
                  [col(JSN, "lang"), count_star(), agg("avg", CSV, "score")],
                  [filt(BIN, "day", "<", day_cut * 2)],
                  joins=list(three_way),
                  group_by=[GroupBySpec(JSN, ("lang",))]),
    ]

    phases = (
        ["BIN"] * 8 + ["CSV"] * 7 + ["JSON"] * 10 + ["BinCSV"] * 5
        + ["BinJSON"] * 5 + ["CSVJSON"] * 5 + ["BINCSVJSON"] * 10
    )
    return [
        WorkloadQuery(index=i + 1, phase=phase, spec=spec)
        for i, (phase, spec) in enumerate(zip(phases, queries))
    ]
