"""Exception hierarchy for the repro (Proteus reproduction) package.

All errors raised by the library derive from :class:`ProteusError` so that
callers can catch a single base class.  The sub-classes mirror the stages of
query processing: parsing, planning, code generation, execution and storage.
"""

from __future__ import annotations


class ProteusError(Exception):
    """Base class for every error raised by the repro package."""


class ParseError(ProteusError):
    """Raised when a SQL statement or a comprehension cannot be parsed."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (near position {position}: ...{snippet!r}...)"
        super().__init__(message)


class SchemaError(ProteusError):
    """Raised when a dataset schema is inconsistent or a field is unknown."""


class AnalysisError(SchemaError):
    """Raised by the static plan analyzer at ``prepare()`` time.

    Carries a machine-readable diagnostic ``code`` (``TYP001`` ...) plus the
    ``dataset`` / ``field`` the diagnostic names, so callers — and the
    planned multi-client server, which must reject bad queries before
    admission — can route errors without parsing the message."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        dataset: str | None = None,
        field: str | None = None,
    ):
        self.code = code
        self.dataset = dataset
        self.field = field
        super().__init__(f"[{code}] {message}")


class CatalogError(ProteusError):
    """Raised when a dataset is missing from, or already present in, the catalog."""


class PlanningError(ProteusError):
    """Raised when the optimizer cannot produce a valid plan for a query."""


class TranslationError(ProteusError):
    """Raised when a calculus expression cannot be translated to the algebra."""


class CodegenError(ProteusError):
    """Raised when code generation produces an invalid program."""


class ExecutionError(ProteusError):
    """Raised when a generated or interpreted plan fails at run time."""


class VectorizationError(ProteusError):
    """Raised when the vectorized batch executor cannot evaluate a plan or
    expression shape; the engine falls back to the Volcano interpreter."""


class StorageError(ProteusError):
    """Raised for binary-format, memory-manager and structural-index failures."""


class PluginError(ProteusError):
    """Raised when an input plug-in cannot serve a request."""


class CacheError(ProteusError):
    """Raised by the caching manager (arena overflow, invalid cache entries)."""


class UnsupportedFeatureError(ProteusError):
    """Raised for query shapes the reproduction intentionally does not cover."""


class ResilienceError(ProteusError):
    """Base class of the resilience subsystem's coded errors.

    Like :class:`AnalysisError`, each instance carries a machine-readable
    ``code`` (``RES001`` ...) so the engine's failure metrics and the planned
    multi-client server can route errors without parsing messages:

    ========  ====================================================
    RES001    query deadline expired (:class:`QueryTimeoutError`)
    RES002    query cancelled (:class:`QueryCancelledError`)
    RES003    admission queue timed out / at capacity
              (:class:`AdmissionRejectedError`)
    RES004    memory reservation can never fit the byte budget
              (:class:`MemoryBudgetError`)
    RES005    transient scan I/O still failing after the retry
              budget (:class:`ScanIOError`)
    RES006    corrupt raw data — parse/decode failure, never
              retried (:class:`CorruptDataError`)
    ========  ====================================================
    """

    code: str = "RES000"

    def __init__(self, message: str, *, dataset: str | None = None):
        self.dataset = dataset
        super().__init__(f"[{self.code}] {message}")


class QueryTimeoutError(ResilienceError):
    """Raised cooperatively (per batch / morsel / tuple stride / kernel call)
    once a query's deadline has expired."""

    code = "RES001"

    def __init__(self, message: str, *, timeout_seconds: float | None = None):
        self.timeout_seconds = timeout_seconds
        super().__init__(message)


class QueryCancelledError(ResilienceError):
    """Raised cooperatively once a query's cancellation token is set."""

    code = "RES002"


class AdmissionRejectedError(ResilienceError):
    """Raised when the admission controller cannot grant a slot before the
    queue timeout (too many concurrent queries or reserved bytes)."""

    code = "RES003"


class MemoryBudgetError(ResilienceError):
    """Raised when a query's estimated memory reservation exceeds the total
    byte budget — waiting would never help, so it is rejected immediately."""

    code = "RES004"


class ScanIOError(ResilienceError):
    """Raised when a transient raw-data I/O fault (``OSError``, truncated
    file) persists after exponential-backoff retries exhaust the per-query
    retry budget."""

    code = "RES005"

    def __init__(
        self, message: str, *, dataset: str | None = None, attempts: int = 0
    ):
        self.attempts = attempts
        super().__init__(message, dataset=dataset)


class CorruptDataError(ResilienceError):
    """Raised when raw input bytes fail to parse (corrupt JSON span, bad
    binary header).  Corruption is deterministic, so it is never retried."""

    code = "RES006"


# ---------------------------------------------------------------------------
# HTTP status mapping (the ``repro.serve`` query service)
# ---------------------------------------------------------------------------
#
# The HTTP serving layer never invents error codes: it surfaces the coded
# errors above verbatim in the response body and only *translates* them to
# an HTTP status.  The mapping, kept here next to the code tables so the two
# cannot drift:
#
# ========  ======  ====================================================
# TYP00x    400     prepare-time analysis rejection — the query itself
#                   is invalid against the registered schemas
# RES001    408     deadline expired (Request Timeout); the body carries
#                   the abort profile's ``partial_progress``
# RES002    499     cancelled via ``DELETE /v1/query/<id>`` (nginx's
#                   "Client Closed Request" convention)
# RES003    429     admission queue full / timed out (Too Many Requests
#                   — the client should back off and retry)
# RES004    503     the reservation can never fit the memory budget
# RES005    503     transient scan I/O outlived the retry budget — the
#                   source may recover, so the request is retryable
# RES006    500     corrupt raw data; retrying cannot help
# (other)   400     parse/plan/schema rejections of the request itself
#           404     unknown dataset (CatalogError)
#           500     any other engine failure
# ========  ======  ====================================================

#: Machine-readable error code -> HTTP status (exact-code entries).
HTTP_STATUS_BY_CODE: dict[str, int] = {
    "RES001": 408,
    "RES002": 499,
    "RES003": 429,
    "RES004": 503,
    "RES005": 503,
    "RES006": 500,
}

#: Statuses for coded families and uncoded error classes (see table above).
HTTP_STATUS_DEFAULT: int = 500


def error_code(exc: BaseException) -> str:
    """The machine-readable code carried by ``exc`` (``"internal"`` if none).

    Mirrors the engine's failure-metrics labelling: coded errors
    (:class:`AnalysisError`, :class:`ResilienceError`) expose ``.code``;
    everything else is labelled by what it is, not what it says.
    """
    code = getattr(exc, "code", None)
    if isinstance(code, str) and code:
        return code
    return "internal"


def http_status_for(exc: BaseException) -> int:
    """HTTP status the serving layer answers with for ``exc``."""
    code = getattr(exc, "code", None)
    if isinstance(code, str):
        status = HTTP_STATUS_BY_CODE.get(code)
        if status is not None:
            return status
        if code.startswith("TYP"):
            return 400
    if isinstance(exc, CatalogError):
        return 404
    if isinstance(
        exc,
        (
            ParseError,
            SchemaError,
            PlanningError,
            TranslationError,
            UnsupportedFeatureError,
        ),
    ):
        return 400
    return HTTP_STATUS_DEFAULT
