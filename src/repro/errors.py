"""Exception hierarchy for the repro (Proteus reproduction) package.

All errors raised by the library derive from :class:`ProteusError` so that
callers can catch a single base class.  The sub-classes mirror the stages of
query processing: parsing, planning, code generation, execution and storage.
"""

from __future__ import annotations


class ProteusError(Exception):
    """Base class for every error raised by the repro package."""


class ParseError(ProteusError):
    """Raised when a SQL statement or a comprehension cannot be parsed."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (near position {position}: ...{snippet!r}...)"
        super().__init__(message)


class SchemaError(ProteusError):
    """Raised when a dataset schema is inconsistent or a field is unknown."""


class AnalysisError(SchemaError):
    """Raised by the static plan analyzer at ``prepare()`` time.

    Carries a machine-readable diagnostic ``code`` (``TYP001`` ...) plus the
    ``dataset`` / ``field`` the diagnostic names, so callers — and the
    planned multi-client server, which must reject bad queries before
    admission — can route errors without parsing the message."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        dataset: str | None = None,
        field: str | None = None,
    ):
        self.code = code
        self.dataset = dataset
        self.field = field
        super().__init__(f"[{code}] {message}")


class CatalogError(ProteusError):
    """Raised when a dataset is missing from, or already present in, the catalog."""


class PlanningError(ProteusError):
    """Raised when the optimizer cannot produce a valid plan for a query."""


class TranslationError(ProteusError):
    """Raised when a calculus expression cannot be translated to the algebra."""


class CodegenError(ProteusError):
    """Raised when code generation produces an invalid program."""


class ExecutionError(ProteusError):
    """Raised when a generated or interpreted plan fails at run time."""


class VectorizationError(ProteusError):
    """Raised when the vectorized batch executor cannot evaluate a plan or
    expression shape; the engine falls back to the Volcano interpreter."""


class StorageError(ProteusError):
    """Raised for binary-format, memory-manager and structural-index failures."""


class PluginError(ProteusError):
    """Raised when an input plug-in cannot serve a request."""


class CacheError(ProteusError):
    """Raised by the caching manager (arena overflow, invalid cache entries)."""


class UnsupportedFeatureError(ProteusError):
    """Raised for query shapes the reproduction intentionally does not cover."""
