"""Exception hierarchy for the repro (Proteus reproduction) package.

All errors raised by the library derive from :class:`ProteusError` so that
callers can catch a single base class.  The sub-classes mirror the stages of
query processing: parsing, planning, code generation, execution and storage.
"""

from __future__ import annotations


class ProteusError(Exception):
    """Base class for every error raised by the repro package."""


class ParseError(ProteusError):
    """Raised when a SQL statement or a comprehension cannot be parsed."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (near position {position}: ...{snippet!r}...)"
        super().__init__(message)


class SchemaError(ProteusError):
    """Raised when a dataset schema is inconsistent or a field is unknown."""


class AnalysisError(SchemaError):
    """Raised by the static plan analyzer at ``prepare()`` time.

    Carries a machine-readable diagnostic ``code`` (``TYP001`` ...) plus the
    ``dataset`` / ``field`` the diagnostic names, so callers — and the
    planned multi-client server, which must reject bad queries before
    admission — can route errors without parsing the message."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        dataset: str | None = None,
        field: str | None = None,
    ):
        self.code = code
        self.dataset = dataset
        self.field = field
        super().__init__(f"[{code}] {message}")


class CatalogError(ProteusError):
    """Raised when a dataset is missing from, or already present in, the catalog."""


class PlanningError(ProteusError):
    """Raised when the optimizer cannot produce a valid plan for a query."""


class TranslationError(ProteusError):
    """Raised when a calculus expression cannot be translated to the algebra."""


class CodegenError(ProteusError):
    """Raised when code generation produces an invalid program."""


class ExecutionError(ProteusError):
    """Raised when a generated or interpreted plan fails at run time."""


class VectorizationError(ProteusError):
    """Raised when the vectorized batch executor cannot evaluate a plan or
    expression shape; the engine falls back to the Volcano interpreter."""


class StorageError(ProteusError):
    """Raised for binary-format, memory-manager and structural-index failures."""


class PluginError(ProteusError):
    """Raised when an input plug-in cannot serve a request."""


class CacheError(ProteusError):
    """Raised by the caching manager (arena overflow, invalid cache entries)."""


class UnsupportedFeatureError(ProteusError):
    """Raised for query shapes the reproduction intentionally does not cover."""


class ResilienceError(ProteusError):
    """Base class of the resilience subsystem's coded errors.

    Like :class:`AnalysisError`, each instance carries a machine-readable
    ``code`` (``RES001`` ...) so the engine's failure metrics and the planned
    multi-client server can route errors without parsing messages:

    ========  ====================================================
    RES001    query deadline expired (:class:`QueryTimeoutError`)
    RES002    query cancelled (:class:`QueryCancelledError`)
    RES003    admission queue timed out / at capacity
              (:class:`AdmissionRejectedError`)
    RES004    memory reservation can never fit the byte budget
              (:class:`MemoryBudgetError`)
    RES005    transient scan I/O still failing after the retry
              budget (:class:`ScanIOError`)
    RES006    corrupt raw data — parse/decode failure, never
              retried (:class:`CorruptDataError`)
    ========  ====================================================
    """

    code: str = "RES000"

    def __init__(self, message: str, *, dataset: str | None = None):
        self.dataset = dataset
        super().__init__(f"[{self.code}] {message}")


class QueryTimeoutError(ResilienceError):
    """Raised cooperatively (per batch / morsel / tuple stride / kernel call)
    once a query's deadline has expired."""

    code = "RES001"

    def __init__(self, message: str, *, timeout_seconds: float | None = None):
        self.timeout_seconds = timeout_seconds
        super().__init__(message)


class QueryCancelledError(ResilienceError):
    """Raised cooperatively once a query's cancellation token is set."""

    code = "RES002"


class AdmissionRejectedError(ResilienceError):
    """Raised when the admission controller cannot grant a slot before the
    queue timeout (too many concurrent queries or reserved bytes)."""

    code = "RES003"


class MemoryBudgetError(ResilienceError):
    """Raised when a query's estimated memory reservation exceeds the total
    byte budget — waiting would never help, so it is rejected immediately."""

    code = "RES004"


class ScanIOError(ResilienceError):
    """Raised when a transient raw-data I/O fault (``OSError``, truncated
    file) persists after exponential-backoff retries exhaust the per-query
    retry budget."""

    code = "RES005"

    def __init__(
        self, message: str, *, dataset: str | None = None, attempts: int = 0
    ):
        self.attempts = attempts
        super().__init__(message, dataset=dataset)


class CorruptDataError(ResilienceError):
    """Raised when raw input bytes fail to parse (corrupt JSON span, bad
    binary header).  Corruption is deterministic, so it is never retried."""

    code = "RES006"
