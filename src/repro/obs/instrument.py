"""Instrumentation shims that attach span accumulators to the executors.

Every helper here is a no-op pass-through when the trace builder is ``None``
— the batch tiers then run the exact stage/scan objects they always ran, and
the codegen runtime keeps its original bound methods.  With tracing on:

* :class:`TracedStage` wraps one pipeline stage (Select/Unnest/Join), timing
  each ``apply`` exclusively (its own work only) with rows-in/rows-out and
  batch counts,
* :class:`TracedScan` wraps the pipeline's ``ScanOperator``, timing the time
  spent *inside* the plug-in's batch stream and summing produced bytes —
  the parallel tier's workers stream disjoint morsel ranges through the same
  wrapper, so their per-morsel flushes aggregate into one morsel-merged span,
* :func:`instrument_runtime` rebinds the codegen ``QueryRuntime`` kernels
  (``scan``/``unnest``/``radix_join``/…) with span-recording closures.
  Generated programs may execute against synthesized sub-plans (lazy field
  materialization splits a scan in two), so codegen spans are keyed by
  kernel kind + label and matched back to plan nodes by operator kind at
  render time.

``SPAN_INSTRUMENTED_OPERATORS`` / ``SPAN_EXEMPT_OPERATORS`` are the
declarative coverage tables ``tools/tier_lint.py`` checks: every ``Phys*``
operator must either be span-instrumented (with a note saying where) or
explicitly exempted.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.trace import SpanAccumulator, TraceBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.codegen.runtime import QueryRuntime
    from repro.core.executor.vectorized import Batch, PipelineCounters

#: Where each physical operator's span comes from, per tier.  Checked by
#: ``tools/tier_lint.py``: a ``Phys*`` class missing from both this table and
#: ``SPAN_EXEMPT_OPERATORS`` fails the lint.
SPAN_INSTRUMENTED_OPERATORS: dict[str, str] = {
    "PhysScan": "TracedScan wraps ScanOperator (batch tiers); rt.scan/"
                "rt.scan_selected closures (codegen); iterator wrapper (volcano)",
    "PhysSelect": "TracedStage(SelectStage) (batch tiers); rt.mask closure "
                  "(codegen, mask coercion only — the comparison itself is "
                  "inlined in the generated program); iterator wrapper (volcano)",
    "PhysUnnest": "TracedStage(UnnestStage) (batch tiers); rt.unnest closure "
                  "(codegen); iterator wrapper (volcano)",
    "PhysHashJoin": "TracedStage(HashJoinStage) (batch tiers); rt.radix_join "
                    "closure (codegen); iterator wrapper (volcano)",
    "PhysNestedLoopJoin": "TracedStage(NestedLoopJoinStage) (batch tiers); "
                          "rt.cross_product closure (codegen); iterator "
                          "wrapper (volcano)",
    "PhysReduce": "engine-side root span around the tier's reduce "
                  "(all tiers); rt.scalar_agg/rt.record_output closures (codegen)",
    "PhysNest": "engine-side root span around the tier's grouping "
                "(all tiers); rt.radix_group/rt.group_agg closures (codegen)",
    "PhysSort": "engine-side sort span around the columnar epilogue; in-tier "
                "sorts (streaming top-K, parallel merge) are covered by the "
                "root span and attributed via profile.sort_strategy",
}

#: Operators deliberately left without spans, with the reason why.
SPAN_EXEMPT_OPERATORS: dict[str, str] = {}


def _batch_nbytes(batch: "Batch") -> int:
    total = 0
    for column in batch.columns.values():
        total += getattr(column, "nbytes", 0)
    return total


def _buffers_nbytes(buffers: Any) -> int:
    columns = getattr(buffers, "columns", None)
    if not columns:
        return 0
    return sum(getattr(column, "nbytes", 0) for column in columns.values())


class TracedStage:
    """A pipeline stage wrapped with an exclusive-time span accumulator."""

    __slots__ = ("inner", "accumulator")

    def __init__(self, inner: Any, accumulator: SpanAccumulator) -> None:
        self.inner = inner
        self.accumulator = accumulator

    def apply(self, batch: "Batch", counters: "PipelineCounters") -> "Batch | None":
        started = time.perf_counter()
        out = self.inner.apply(batch, counters)
        self.accumulator.add_batch(
            time.perf_counter() - started,
            batch.count,
            out.count if out is not None else 0,
        )
        return out

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class TracedScan:
    """A ``ScanOperator`` wrapped with a span over its plug-in streams.

    Only the time spent *inside* the underlying batch generator is charged
    to the span (pipeline stages downstream are timed by their own
    wrappers).  One flush happens per exhausted stream, so the parallel
    tier pays one locked add per morsel, not per batch.
    """

    __slots__ = ("inner", "accumulator")

    def __init__(self, inner: Any, accumulator: SpanAccumulator) -> None:
        self.inner = inner
        self.accumulator = accumulator

    def iter_batches(
        self, counters: "PipelineCounters", batch_size: int
    ) -> Iterator["Batch"]:
        return self._timed(self.inner.iter_batches(counters, batch_size))

    def iter_range(
        self, start: int, stop: int, counters: "PipelineCounters", batch_size: int
    ) -> Iterator["Batch"]:
        return self._timed(self.inner.iter_range(start, stop, counters, batch_size))

    def _timed(self, stream: Iterator["Batch"]) -> Iterator["Batch"]:
        seconds = 0.0
        rows = 0
        batches = 0
        nbytes = 0
        try:
            while True:
                started = time.perf_counter()
                try:
                    batch = next(stream)
                except StopIteration:
                    seconds += time.perf_counter() - started
                    return
                seconds += time.perf_counter() - started
                rows += batch.count
                batches += 1
                nbytes += _batch_nbytes(batch)
                yield batch
        finally:
            self.accumulator.add(
                seconds=seconds,
                rows_out=rows,
                batches=batches,
                nbytes=nbytes,
                invocations=1,
            )

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


def traced_stage(trace: TraceBuilder | None, node: object, stage: Any) -> Any:
    """Wrap a pipeline stage with a span for ``node``; pass-through untraced."""
    if trace is None:
        return stage
    name = type(node).__name__.removeprefix("Phys").lower()
    accumulator = trace.operator(
        name,
        node=node,
        detail=type(stage).__name__,
    )
    return TracedStage(stage, accumulator)


def traced_scan(trace: TraceBuilder | None, node: object, operator: Any) -> Any:
    """Wrap a ``ScanOperator`` with a span; pass-through untraced."""
    if trace is None:
        return operator
    dataset_name = getattr(getattr(operator, "dataset", None), "name", "?")
    accumulator = trace.operator(
        f"scan:{dataset_name}",
        node=node,
        detail=getattr(getattr(operator, "plugin", None), "format_name", ""),
    )
    return TracedScan(operator, accumulator)


def instrument_runtime(runtime: "QueryRuntime", trace: TraceBuilder) -> None:
    """Rebind a codegen ``QueryRuntime``'s kernels with span recording.

    The closures shadow the class methods on this one instance only; an
    untraced runtime keeps the original bound methods and pays nothing.
    """
    perf = time.perf_counter
    join_count = [0]
    cross_count = [0]

    inner_scan = runtime.scan

    def scan(plugin: Any, dataset: Any, paths: Any) -> Any:
        accumulator = trace.operator(
            f"scan:{dataset.name}", operator="PhysScan", detail=plugin.format_name
        )
        started = perf()
        buffers = inner_scan(plugin, dataset, paths)
        accumulator.add(
            seconds=perf() - started,
            rows_out=buffers.count,
            nbytes=_buffers_nbytes(buffers),
            batches=1,
        )
        return buffers

    inner_scan_selected = runtime.scan_selected

    def scan_selected(plugin: Any, dataset: Any, paths: Any, oids: Any) -> Any:
        accumulator = trace.operator(
            f"scan:{dataset.name}",
            operator="PhysScan",
            detail=f"{plugin.format_name} (+lazy fields)",
        )
        started = perf()
        buffers = inner_scan_selected(plugin, dataset, paths, oids)
        accumulator.add(
            seconds=perf() - started,
            rows_out=0,  # lazy fields add columns, not rows
            nbytes=_buffers_nbytes(buffers),
            batches=1,
        )
        return buffers

    inner_unnest = runtime.unnest

    def unnest(
        plugin: Any,
        dataset: Any,
        collection_path: Any,
        element_paths: Any,
        parent_oids: Any,
        full_scan: bool = False,
    ) -> Any:
        path = ".".join(collection_path)
        accumulator = trace.operator(
            f"unnest:{dataset.name}.{path}",
            operator="PhysUnnest",
            detail=plugin.format_name,
        )
        started = perf()
        buffers = inner_unnest(
            plugin, dataset, collection_path, element_paths, parent_oids,
            full_scan=full_scan,
        )
        accumulator.add(
            seconds=perf() - started,
            rows_in=len(parent_oids) if parent_oids is not None else 0,
            rows_out=buffers.count,
            nbytes=_buffers_nbytes(buffers),
            batches=1,
        )
        return buffers

    inner_radix_join = runtime.radix_join

    def radix_join(left_keys: Any, right_keys: Any, *args: Any, **kwargs: Any) -> Any:
        join_count[0] += 1
        accumulator = trace.operator(
            f"join:{join_count[0]}", operator="PhysHashJoin", detail="radix join"
        )
        started = perf()
        left_positions, right_positions = inner_radix_join(
            left_keys, right_keys, *args, **kwargs
        )
        accumulator.add(
            seconds=perf() - started,
            rows_in=len(right_keys),
            rows_out=len(left_positions),
            batches=1,
        )
        return left_positions, right_positions

    inner_cross = runtime.cross_product

    def cross_product(left_count: int, right_count: int) -> Any:
        cross_count[0] += 1
        accumulator = trace.operator(
            f"nested-loop:{cross_count[0]}",
            operator="PhysNestedLoopJoin",
            detail="cartesian index pairs; the residual predicate is inlined",
        )
        started = perf()
        left, right = inner_cross(left_count, right_count)
        accumulator.add(
            seconds=perf() - started,
            rows_in=left_count,
            rows_out=len(left),
            batches=1,
        )
        return left, right

    inner_mask = runtime.mask

    def mask(values: Any) -> Any:
        accumulator = trace.operator(
            "select",
            operator="PhysSelect",
            detail="mask coercion only; predicate arithmetic is inlined "
                   "in the generated program",
        )
        started = perf()
        result = inner_mask(values)
        accumulator.add(
            seconds=perf() - started,
            rows_in=len(result),
            rows_out=int(result.sum()),
            batches=1,
        )
        return result

    inner_radix_group = runtime.radix_group

    def radix_group(key_arrays: Any) -> Any:
        accumulator = trace.operator(
            "group-by", operator="PhysNest", detail="radix grouping + aggregates"
        )
        started = perf()
        result = inner_radix_group(key_arrays)
        accumulator.add(
            seconds=perf() - started,
            rows_in=len(key_arrays[0]) if len(key_arrays) else 0,
            rows_out=result.num_groups,
            batches=1,
        )
        return result

    inner_group_agg = runtime.group_agg

    def group_agg(func: str, group_ids: Any, num_groups: int, values: Any = None) -> Any:
        accumulator = trace.operator(
            "group-by", operator="PhysNest", detail="radix grouping + aggregates"
        )
        started = perf()
        result = inner_group_agg(func, group_ids, num_groups, values)
        accumulator.add(seconds=perf() - started, batches=1)
        return result

    inner_scalar_agg = runtime.scalar_agg

    def scalar_agg(func: str, values: Any, count: int) -> Any:
        accumulator = trace.operator(
            "reduce", operator="PhysReduce", detail="scalar aggregates"
        )
        started = perf()
        result = inner_scalar_agg(func, values, count)
        accumulator.add(seconds=perf() - started, rows_in=count, batches=1)
        return result

    inner_record_output = runtime.record_output

    def record_output(count: int) -> None:
        accumulator = trace.operator(
            "reduce", operator="PhysReduce", detail="projected output"
        )
        accumulator.add(rows_out=int(count), invocations=0)
        inner_record_output(count)

    runtime.scan = scan  # type: ignore[method-assign]
    runtime.scan_selected = scan_selected  # type: ignore[method-assign]
    runtime.unnest = unnest  # type: ignore[method-assign]
    runtime.radix_join = radix_join  # type: ignore[method-assign]
    runtime.cross_product = cross_product  # type: ignore[method-assign]
    runtime.mask = mask  # type: ignore[method-assign]
    runtime.radix_group = radix_group  # type: ignore[method-assign]
    runtime.group_agg = group_agg  # type: ignore[method-assign]
    runtime.scalar_agg = scalar_agg  # type: ignore[method-assign]
    runtime.record_output = record_output  # type: ignore[method-assign]
