"""Span tracing: per-phase and per-operator timing of one query execution.

The tracing layer is pay-for-what-you-use.  When the engine's ``Tracer`` is
disabled (the default) no builder exists, every instrumentation site reduces
to one ``is None`` check, and the batch pipelines run the exact same
unwrapped stage objects as an untraced engine.  When enabled, one
:class:`TraceBuilder` accompanies a query execution and collects:

* **phase spans** — ``parse``, ``analyze``, ``plan``, ``codegen``,
  ``tier-cascade``, ``execute``, ``materialize`` — wall-clock sections of the
  engine's own control flow, and
* **operator spans** — one per physical operator, with rows-in/rows-out,
  batch and byte attributes.  Operator spans are *accumulators*: the batch
  tiers add to them once per batch, the parallel tier's workers add to the
  same accumulator from many threads (a lock makes that safe — contention is
  per batch, not per row), the Volcano tier flushes one locally-accumulated
  total per iterator, and the codegen runtime records one entry per kernel
  call.

Finished traces are immutable :class:`QueryTrace` values held in a bounded
ring buffer on the engine (``engine.tracer.traces()``) with a structured
``to_dict()`` export.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.concurrency import make_lock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.codegen.runtime import ExecutionProfile
    from repro.core.physical import PhysicalPlan

#: Default ring-buffer capacity of ``Tracer``.
DEFAULT_TRACE_CAPACITY = 32

#: The engine phases a trace may record, in their canonical display order.
PHASES = (
    "parse",
    "analyze",
    "plan",
    "codegen",
    "tier-cascade",
    "execute",
    "materialize",
)


@dataclass
class Span:
    """One timed section of a query execution.

    ``kind`` is ``"phase"`` for engine control-flow sections and
    ``"operator"`` for physical-operator work.  ``node_id`` is the operator's
    ordinal in the plan's post-order walk (``None`` when the span could not
    be tied to one plan node, e.g. a codegen kernel call).  ``inclusive``
    marks spans whose time includes their children's time (Volcano iterator
    wrappers and root spans); exclusive spans (batch pipeline stages) time
    only their own work.
    """

    name: str
    kind: str
    seconds: float = 0.0
    node_id: int | None = None
    operator: str | None = None
    detail: str = ""
    rows_in: int = 0
    rows_out: int = 0
    batches: int = 0
    bytes_processed: int = 0
    invocations: int = 0
    inclusive: bool = False

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "seconds": self.seconds,
        }
        if self.kind == "operator":
            out.update(
                node_id=self.node_id,
                operator=self.operator,
                rows_in=self.rows_in,
                rows_out=self.rows_out,
                batches=self.batches,
                bytes_processed=self.bytes_processed,
                invocations=self.invocations,
                inclusive=self.inclusive,
            )
        if self.detail:
            out["detail"] = self.detail
        return out


class SpanAccumulator:
    """Thread-safe mutable accumulator behind one operator span.

    Instrumentation wrappers call :meth:`add` (batch tiers: once per batch;
    Volcano: once per exhausted iterator; codegen: once per kernel call).
    The lock is uncontended on the serial tiers and per-batch on the
    parallel tier, so its cost disappears into the batch work it measures.
    """

    __slots__ = (
        "name",
        "node_id",
        "operator",
        "detail",
        "inclusive",
        "seconds",
        "rows_in",
        "rows_out",
        "batches",
        "bytes_processed",
        "invocations",
        "_lock",
        "_batch_buckets",
    )

    def __init__(
        self,
        name: str,
        node_id: int | None = None,
        operator: str | None = None,
        detail: str = "",
        inclusive: bool = False,
    ) -> None:
        self.name = name
        self.node_id = node_id
        self.operator = operator
        self.detail = detail
        self.inclusive = inclusive
        self.seconds = 0.0
        self.rows_in = 0
        self.rows_out = 0
        self.batches = 0
        self.bytes_processed = 0
        self.invocations = 0
        self._lock = make_lock("SpanAccumulator._lock")
        #: Per-thread ``[seconds, rows_in, rows_out, batches]`` subtotals for
        #: the batch fast path; each bucket is mutated only by its owning
        #: thread (GIL-atomic list-item updates), merged in :meth:`to_span`.
        self._batch_buckets: dict[int, list] = {}

    def add(
        self,
        seconds: float = 0.0,
        rows_in: int = 0,
        rows_out: int = 0,
        batches: int = 0,
        nbytes: int = 0,
        invocations: int = 1,
    ) -> None:
        with self._lock:
            self.seconds += seconds
            self.rows_in += rows_in
            self.rows_out += rows_out
            self.batches += batches
            self.bytes_processed += nbytes
            self.invocations += invocations

    def add_batch(self, seconds: float, rows_in: int, rows_out: int) -> None:
        """Lock-free positional fast path for the per-batch stage wrappers.

        Each thread accumulates into its own bucket (kwargs packing and the
        lock both cost as much as the arithmetic at this call rate); the
        buckets are merged when the span is assembled.
        """
        ident = threading.get_ident()
        bucket = self._batch_buckets.get(ident)
        if bucket is None:
            with self._lock:
                bucket = self._batch_buckets.setdefault(ident, [0.0, 0, 0, 0])
        bucket[0] += seconds
        bucket[1] += rows_in
        bucket[2] += rows_out
        bucket[3] += 1

    def to_span(self) -> Span:
        with self._lock:
            seconds = self.seconds
            rows_in = self.rows_in
            rows_out = self.rows_out
            batches = self.batches
            invocations = self.invocations
            for bucket in self._batch_buckets.values():
                seconds += bucket[0]
                rows_in += bucket[1]
                rows_out += bucket[2]
                batches += bucket[3]
                invocations += bucket[3]
            return Span(
                name=self.name,
                kind="operator",
                seconds=seconds,
                node_id=self.node_id,
                operator=self.operator,
                detail=self.detail,
                rows_in=rows_in,
                rows_out=rows_out,
                batches=batches,
                bytes_processed=self.bytes_processed,
                invocations=invocations,
                inclusive=self.inclusive,
            )


@dataclass
class QueryTrace:
    """The immutable result of tracing one query execution."""

    query_text: str
    tier: str
    predicted_tier: str | None
    elapsed_seconds: float
    phases: list[Span] = field(default_factory=list)
    operators: list[Span] = field(default_factory=list)
    #: ``None`` for completed queries; the resilience diagnostic code
    #: (``RES001`` timeout, ``RES002`` cancel, ...) when the traced
    #: execution was aborted — its spans cover only the work done so far.
    aborted: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "query": self.query_text,
            "tier": self.tier,
            "predicted_tier": self.predicted_tier,
            "elapsed_seconds": self.elapsed_seconds,
            "aborted": self.aborted,
            "phases": [span.to_dict() for span in self.phases],
            "operators": [span.to_dict() for span in self.operators],
        }

    def phase_seconds(self, name: str) -> float:
        return sum(span.seconds for span in self.phases if span.name == name)

    def operator_span(self, name: str) -> Span | None:
        for span in self.operators:
            if span.name == name:
                return span
        return None


class TraceBuilder:
    """Collects the spans of one query execution.

    Operator spans are keyed by ``(node ordinal, span name)`` — the ordinal
    is the operator's position in the plan's post-order ``walk()``, which is
    deterministic per plan shape, so every tier attributes work to the same
    key.  Spans the instrumentation cannot tie to a plan node (codegen
    kernel calls, which run against generated code that may reference
    synthesized sub-plans) carry ``node_id=None`` and are matched back to
    nodes by operator kind at render time.
    """

    def __init__(self, query_text: str, plan: "PhysicalPlan | None") -> None:
        self.query_text = query_text
        self.plan = plan
        self._node_ids: dict[int, int] = {}
        if plan is not None:
            for index, node in enumerate(plan.walk()):
                self._node_ids[id(node)] = index
        self.phase_spans: list[Span] = []
        self._operators: dict[tuple[int | None, str], SpanAccumulator] = {}
        self._lock = make_lock("TraceBuilder._lock")

    # -- phases ----------------------------------------------------------------

    def add_phase(self, name: str, seconds: float) -> None:
        with self._lock:
            self.phase_spans.append(Span(name=name, kind="phase", seconds=seconds))

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - started)

    # -- operators -------------------------------------------------------------

    def node_ordinal(self, node: object) -> int | None:
        return self._node_ids.get(id(node))

    def operator(
        self,
        name: str,
        node: object = None,
        operator: str | None = None,
        detail: str = "",
        inclusive: bool = False,
    ) -> SpanAccumulator:
        """The (get-or-created) accumulator of one operator span.

        ``node`` is the physical-plan node the span measures; when it is a
        node of the traced plan the span inherits its walk ordinal, otherwise
        (or when ``None``) the span is keyed by name alone.
        """
        node_id = self.node_ordinal(node) if node is not None else None
        if operator is None and node is not None:
            operator = type(node).__name__
        key = (node_id, name)
        with self._lock:
            accumulator = self._operators.get(key)
            if accumulator is None:
                accumulator = SpanAccumulator(
                    name,
                    node_id=node_id,
                    operator=operator,
                    detail=detail,
                    inclusive=inclusive,
                )
                self._operators[key] = accumulator
            return accumulator

    def operator_spans(self) -> list[Span]:
        with self._lock:
            accumulators = list(self._operators.values())
        spans = [accumulator.to_span() for accumulator in accumulators]
        spans.sort(key=lambda span: (span.node_id is None, span.node_id or 0, span.name))
        return spans

    # -- assembly --------------------------------------------------------------

    def finish(
        self,
        profile: "ExecutionProfile | None",
        elapsed_seconds: float,
        aborted: str | None = None,
    ) -> QueryTrace:
        order = {name: index for index, name in enumerate(PHASES)}
        phases = sorted(
            self.phase_spans, key=lambda span: order.get(span.name, len(order))
        )
        return QueryTrace(
            query_text=self.query_text,
            tier=profile.execution_tier if profile is not None else "unknown",
            predicted_tier=profile.predicted_tier if profile is not None else None,
            elapsed_seconds=elapsed_seconds,
            phases=phases,
            operators=self.operator_spans(),
            aborted=aborted,
        )


class Tracer:
    """The engine's tracing switchboard and bounded trace ring buffer.

    ``enabled`` is the master switch — engines pass ``enable_tracing=True``
    (or use :meth:`force`, which ``explain(analyze=True)`` does).  Phases
    measured before an execution starts (parse/plan happen in ``prepare()``)
    are parked in a pending list and folded into the next builder.
    """

    def __init__(
        self, capacity: int = DEFAULT_TRACE_CAPACITY, enabled: bool = False
    ) -> None:
        self.enabled = enabled
        self._traces: deque[QueryTrace] = deque(maxlen=max(int(capacity), 1))
        self._pending_phases: list[tuple[str, float]] = []
        self.active: TraceBuilder | None = None
        self._lock = make_lock("Tracer._lock")

    # -- recording -------------------------------------------------------------

    def record_phase(self, name: str, seconds: float) -> None:
        """Park a phase measured outside an active execution (prepare time)."""
        if not self.enabled:
            return
        with self._lock:
            active = self.active
            if active is None:
                # Bound the parked list: prepares without a following execute
                # must not accumulate (keep the most recent prepare's phases).
                if len(self._pending_phases) >= 16:
                    del self._pending_phases[0]
                self._pending_phases.append((name, seconds))
                return
        active.add_phase(name, seconds)

    def begin(self, query_text: str, plan: "PhysicalPlan | None") -> TraceBuilder | None:
        """Start tracing one execution; ``None`` when tracing is disabled."""
        if not self.enabled:
            return None
        builder = TraceBuilder(query_text, plan)
        with self._lock:
            pending, self._pending_phases = self._pending_phases, []
            self.active = builder
        for name, seconds in pending:
            builder.add_phase(name, seconds)
        return builder

    def finish(
        self,
        builder: TraceBuilder,
        profile: "ExecutionProfile | None",
        elapsed_seconds: float,
        aborted: str | None = None,
    ) -> QueryTrace:
        trace = builder.finish(profile, elapsed_seconds, aborted=aborted)
        with self._lock:
            self._traces.append(trace)
            if self.active is builder:
                self.active = None
        return trace

    # -- inspection ------------------------------------------------------------

    def traces(self) -> list[QueryTrace]:
        with self._lock:
            return list(self._traces)

    def last(self) -> QueryTrace | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._pending_phases.clear()

    @contextmanager
    def force(self) -> Iterator[None]:
        """Temporarily enable tracing (``explain(analyze=True)``)."""
        previous = self.enabled
        self.enabled = True
        try:
            yield
        finally:
            self.enabled = previous
