"""Engine-wide metrics registry: counters, gauges, histograms.

The registry is the scrape surface the upcoming query service will mount
(ROADMAP item 1): thread-safe, labeled counters/gauges/histograms with JSON
(``to_dict()``) and Prometheus text (``render_prometheus()``) exposition,
plus a bounded slow-query log that captures the active trace when one is
being recorded.

Gauges may be *callback-backed*: the engine registers closures over live
state (cache statistics, per-plugin scan counters) so every scrape reads the
current value without the hot path ever touching the registry.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Mapping

from repro.core.concurrency import make_lock

#: Exact content type of the Prometheus text exposition format (v0.0.4).
#: Scrapers reject ``text/html`` or a bare ``text/plain`` without the
#: version parameter, so anything mounting :meth:`MetricsRegistry.
#: render_prometheus` over HTTP (``GET /metrics`` in ``repro.serve``) must
#: answer with this string verbatim.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Latency buckets (seconds) of the default query-duration histogram —
#: sub-millisecond cache hits up to multi-second cold scans.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Bounded length of the slow-query log.
SLOW_QUERY_LOG_CAPACITY = 64

LabelValues = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelValues:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelValues) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing, optionally labeled metric."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: dict[LabelValues, float] = {}
        self._lock = make_lock("Counter._lock")

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[LabelValues, float]]:
        with self._lock:
            return sorted(self._values.items())

    def to_dict(self) -> dict[str, Any]:
        samples = self.samples()
        if len(samples) == 1 and not samples[0][0]:
            return {"type": self.kind, "value": samples[0][1]}
        return {
            "type": self.kind,
            "values": {
                "{" + ",".join(f"{k}={v}" for k, v in labels) + "}": value
                for labels, value in samples
            },
        }

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        samples = self.samples() or [((), 0.0)]
        for labels, value in samples:
            lines.append(f"{self.name}{_render_labels(labels)} {_format_value(value)}")
        return lines


class Gauge(Counter):
    """A metric that can go up and down; optionally backed by a callback.

    A callback gauge reads its value(s) at scrape time from a closure that
    returns either a scalar or a ``{label-value: scalar}`` mapping keyed by
    ``callback_label``.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        callback: Callable[[], float | Mapping[str, float]] | None = None,
        callback_label: str = "source",
    ) -> None:
        super().__init__(name, help_text)
        self._callback = callback
        self._callback_label = callback_label

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def samples(self) -> list[tuple[LabelValues, float]]:
        if self._callback is not None:
            result = self._callback()
            if isinstance(result, Mapping):
                return sorted(
                    (((self._callback_label, str(label)),), float(value))
                    for label, value in result.items()
                )
            return [((), float(result))]
        return super().samples()


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = make_lock("Histogram._lock")

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        cumulative: dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative[str(bound)] = running
        cumulative["+Inf"] = total
        return {
            "type": self.kind,
            "count": total,
            "sum": sum_,
            "buckets": cumulative,
        }

    def render(self) -> list[str]:
        data = self.to_dict()
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        for bound, running in data["buckets"].items():
            lines.append(f'{self.name}_bucket{{le="{bound}"}} {running}')
        lines.append(f"{self.name}_sum {_format_value(data['sum'])}")
        lines.append(f"{self.name}_count {data['count']}")
        return lines


class MetricsRegistry:
    """Thread-safe registry of the engine's metrics.

    ``enabled`` gates the engine's *recording* (the registry itself always
    answers scrapes); disabling it reduces the per-query metrics cost to one
    attribute check.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._slow_queries: deque[dict[str, Any]] = deque(
            maxlen=SLOW_QUERY_LOG_CAPACITY
        )
        self._lock = make_lock("MetricsRegistry._lock")

    # -- registration ----------------------------------------------------------

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help_text), Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help_text), Gauge)

    def gauge_callback(
        self,
        name: str,
        callback: Callable[[], float | Mapping[str, float]],
        help_text: str = "",
        callback_label: str = "source",
    ) -> Gauge:
        return self._get_or_create(
            name,
            lambda: Gauge(name, help_text, callback=callback, callback_label=callback_label),
            Gauge,
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets), Histogram
        )

    def _get_or_create(
        self, name: str, factory: Callable[[], Any], expected: type
    ) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected):
                raise ValueError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    # -- slow-query log --------------------------------------------------------

    def record_slow_query(self, entry: Mapping[str, Any]) -> None:
        with self._lock:
            self._slow_queries.append(dict(entry))

    def slow_queries(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._slow_queries)

    # -- exposition ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            metrics = dict(self._metrics)
            slow = list(self._slow_queries)
        out: dict[str, Any] = {
            name: metric.to_dict() for name, metric in sorted(metrics.items())
        }
        out["slow_queries"] = slow
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4).

        Wire contract (regression-tested; scrapers are strict about both):
        the exposition ends with exactly one newline after the last sample
        line, and an empty registry renders as the empty string rather than
        a lone blank line.  Serve it with :data:`PROMETHEUS_CONTENT_TYPE`.
        """
        with self._lock:
            metrics = dict(self._metrics)
        lines: list[str] = []
        for _, metric in sorted(metrics.items()):
            lines.extend(metric.render())
        if not lines:
            return ""
        return "\n".join(lines) + "\n"
