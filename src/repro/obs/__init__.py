"""Query observability: span tracing, EXPLAIN ANALYZE, metrics registry.

Three faces over one subsystem:

* :mod:`repro.obs.trace` — pay-for-what-you-use span tracing of query
  phases and physical operators, with a bounded ring buffer of recent
  :class:`QueryTrace` exports on the engine (``engine.tracer``),
* :mod:`repro.obs.explain` — the ``explain(analyze=True)`` report comparing
  the static analyzer's predictions against measured spans,
* :mod:`repro.obs.metrics` — the engine-wide :class:`MetricsRegistry`
  (``engine.metrics``) with JSON and Prometheus text exposition.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    QueryTrace,
    Span,
    SpanAccumulator,
    TraceBuilder,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "SpanAccumulator",
    "TraceBuilder",
    "Tracer",
]
