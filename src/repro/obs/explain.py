"""EXPLAIN ANALYZE rendering: static predictions beside measured spans.

``engine.explain(text, analyze=True)`` executes the query under a forced
trace and hands the result here.  The report annotates every plan node with
the optimizer's *estimated* cardinality (the same formulas the cost model
uses for plan selection) next to the *actual* rows/time the span tracing
measured — plus the predicted-vs-served tier and the phase breakdown — so
the PR 6 static-analysis artifact becomes a self-checking feedback report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.trace import QueryTrace, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.codegen.runtime import ExecutionProfile
    from repro.core.optimizer.statistics import StatisticsManager
    from repro.core.physical import PhysicalPlan

#: Mirrors ``CostModel._cost``'s unnest fan-out assumption.
UNNEST_FANOUT = 4.0


def estimate_cardinalities(
    plan: "PhysicalPlan", statistics: "StatisticsManager"
) -> dict[int, float]:
    """Estimated output rows per plan node, keyed by post-order walk ordinal.

    Replicates the row half of ``CostModel._cost`` (the optimizer's own
    estimates) so the EXPLAIN ANALYZE report compares actual cardinalities
    against exactly what plan selection believed.
    """
    from repro.core.physical import (
        PhysHashJoin,
        PhysNest,
        PhysNestedLoopJoin,
        PhysReduce,
        PhysScan,
        PhysSelect,
        PhysSort,
        PhysUnnest,
    )

    ordinals = {id(node): index for index, node in enumerate(plan.walk())}
    binding_datasets: dict[str, str] = {
        node.binding: node.dataset
        for node in plan.walk()
        if isinstance(node, PhysScan)
    }
    estimates: dict[int, float] = {}

    def visit(node: Any) -> float:
        if isinstance(node, PhysScan):
            rows = float(statistics.dataset_cardinality(node.dataset))
        elif isinstance(node, PhysSelect):
            rows = visit(node.child) * statistics.predicate_selectivity(
                node.predicate, binding_datasets
            )
        elif isinstance(node, PhysUnnest):
            rows = (
                visit(node.child)
                * UNNEST_FANOUT
                * statistics.predicate_selectivity(node.predicate, binding_datasets)
            )
        elif isinstance(node, PhysHashJoin):
            rows = max(visit(node.left), visit(node.right))
        elif isinstance(node, PhysNestedLoopJoin):
            rows = visit(node.left) * visit(node.right) * 0.1
        elif isinstance(node, PhysNest):
            rows = visit(node.child) * 0.1
        elif isinstance(node, PhysReduce):
            child_rows = visit(node.child)
            has_aggregate = any(
                _contains_aggregate(column.expression) for column in node.columns
            )
            rows = 1.0 if has_aggregate else child_rows
        elif isinstance(node, PhysSort):
            child_rows = visit(node.child)
            limit = node.limit if isinstance(node.limit, int) else None
            rows = child_rows if limit is None else float(min(child_rows, limit))
        else:
            children = node.children()
            rows = visit(children[0]) if children else 1.0
        estimates[ordinals[id(node)]] = rows
        return rows

    visit(plan)
    return estimates


def _contains_aggregate(expression: Any) -> bool:
    from repro.core.expressions import contains_aggregate

    return bool(contains_aggregate(expression))


def assign_spans(
    plan: "PhysicalPlan", spans: list[Span]
) -> tuple[dict[int, list[Span]], list[Span]]:
    """Attach operator spans to plan nodes.

    Spans carrying a walk ordinal attach directly.  Floating spans (codegen
    kernels, recorded against generated code) are claimed by the first
    span-less node of the matching operator kind, in walk order — scans
    additionally require the span's dataset label to match.  Whatever
    cannot be attributed is returned separately and rendered at the end,
    never dropped.
    """
    nodes = list(plan.walk())
    by_node: dict[int, list[Span]] = {}
    floating: list[Span] = []
    for span in spans:
        if span.node_id is not None:
            by_node.setdefault(span.node_id, []).append(span)
        else:
            floating.append(span)
    claimed: set[int] = set()
    for ordinal, node in enumerate(nodes):
        if ordinal in by_node:
            continue
        kind = type(node).__name__
        for index, span in enumerate(floating):
            if index in claimed or span.operator != kind:
                continue
            if kind == "PhysScan" and span.name != f"scan:{node.dataset}":
                continue
            claimed.add(index)
            by_node.setdefault(ordinal, []).append(span)
            break
    leftovers = [
        span for index, span in enumerate(floating) if index not in claimed
    ]
    return by_node, leftovers


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f} ms"


def _fmt_rows(rows: float) -> str:
    if rows == int(rows):
        return str(int(rows))
    return f"{rows:.1f}"


def _span_actual(span: Span) -> str:
    parts = [f"{span.rows_out} rows", f"{_fmt_ms(span.seconds)}"]
    if span.batches:
        parts.append(f"{span.batches} batches")
    if span.bytes_processed:
        parts.append(f"{span.bytes_processed} bytes")
    if span.inclusive:
        parts.append("incl. children")
    text = ", ".join(parts)
    if span.detail:
        text += f" [{span.detail}]"
    return text


def render_explain_analyze(
    plan: "PhysicalPlan",
    trace: QueryTrace | None,
    profile: "ExecutionProfile",
    statistics: "StatisticsManager",
    result_rows: int,
    elapsed_seconds: float,
) -> str:
    """The EXPLAIN ANALYZE report for one executed, traced query."""
    estimates = estimate_cardinalities(plan, statistics)
    spans = trace.operators if trace is not None else []
    by_node, leftovers = assign_spans(plan, spans)
    root_ordinal = len(list(plan.walk())) - 1

    parts: list[str] = ["== explain analyze =="]
    predicted = profile.predicted_tier or "?"
    marker = "as predicted" if predicted == profile.execution_tier else "DEMOTED"
    parts.append(
        f"tier: {profile.execution_tier} (predicted: {predicted}, {marker})"
    )
    estimated_root = estimates.get(root_ordinal)
    parts.append(
        f"rows: {result_rows} actual vs ~{_fmt_rows(estimated_root or 0.0)} "
        f"estimated; elapsed {_fmt_ms(elapsed_seconds)}"
    )
    if profile.sort_strategy:
        parts.append(f"sort strategy: {profile.sort_strategy}")

    if trace is not None and trace.phases:
        parts.extend(["", "== phases =="])
        for span in trace.phases:
            parts.append(f"  {span.name:<13}{_fmt_ms(span.seconds)}")

    parts.extend(["", "== plan: estimated vs actual =="])
    ordinals = {id(node): index for index, node in enumerate(plan.walk())}

    def render_node(node: Any, indent: int) -> None:
        pad = "  " * indent
        parts.append(pad + node.describe())
        ordinal = ordinals[id(node)]
        estimate = estimates.get(ordinal)
        annotation = f"{pad}  ~ est {_fmt_rows(estimate or 0.0)} rows"
        node_spans = by_node.get(ordinal)
        if node_spans:
            annotation += " | actual " + "; ".join(
                _span_actual(span) for span in node_spans
            )
        else:
            annotation += " | (no span recorded)"
        parts.append(annotation)
        for child in node.children():
            render_node(child, indent + 1)

    render_node(plan, 0)

    if leftovers:
        parts.extend(["", "== unattributed spans =="])
        for span in leftovers:
            parts.append(f"  {span.name}: {_span_actual(span)}")

    parts.extend(["", "== tier cascade =="])
    parts.append(f"{profile.execution_tier}: served this execution")
    reasons: Mapping[str, str] = profile.tier_decline_reasons or {}
    for tier, reason in reasons.items():
        parts.append(f"{tier}: declined -- {reason}")
    return "\n".join(parts)
