"""Cache/plan matching (§6, "Cache Matching").

Every cache entry is keyed by the fingerprint of the plan fragment that
produced it.  Before generating code for a new query, the engine walks the
physical plan bottom-up and probes the caching manager for fragments that can
be replaced:

* **full matches** — an identical sub-plan (same operation, same arguments,
  matching children) whose materialized output can be reused as-is,
* **partial matches** — the already-materialized build side of a radix join
  can be reused by a different join over the same input and join key,
* **field matches** — the narrowest and most common case: a converted field
  column of a raw dataset (a ``Scan`` + field projection), reusable by any
  query touching that field.

Subsumption (reusing σx>0(A) for σx>10(A) by re-applying the predicate) is
listed as future work in the paper and is not implemented here either.
"""

from __future__ import annotations

from typing import Sequence

#: A (possibly nested) field path. Kept as a local alias rather than importing
#: from ``repro.plugins.base`` to avoid a circular import (the cache plug-in
#: imports this module).
FieldPath = tuple[str, ...]


def field_cache_key(dataset: str, path: FieldPath) -> tuple:
    """Cache key of a converted field column of a raw dataset.

    This corresponds to the plan fragment ``Reduce[bag](field)(Scan(dataset))``
    — a scan followed by a field projection — which is the shape the paper's
    caching manager favours ("fully replace a costly access path").
    """
    return ("field", dataset, tuple(path))


def unnest_cache_key(dataset: str, collection_path: FieldPath,
                     element_paths: Sequence[FieldPath]) -> tuple:
    """Cache key of the flattened output of an Unnest over a raw dataset."""
    return (
        "unnest",
        dataset,
        tuple(collection_path),
        tuple(tuple(path) for path in element_paths),
    )


def join_side_cache_key(side_fingerprint: tuple, key_fingerprint: tuple) -> tuple:
    """Cache key of a materialized radix-join side.

    ``side_fingerprint`` identifies the plan fragment that produced the side's
    input; ``key_fingerprint`` identifies the join-key expression.  A later
    join over the same input and the same key — even against a different other
    side — is a partial match and reuses the materialization (the paper's
    ``A ⋈ B`` then ``A ⋈ C`` example).
    """
    return ("join_side", side_fingerprint, key_fingerprint)


def plan_fingerprint(plan) -> tuple:
    """Fingerprint of a logical or physical plan fragment.

    Both plan families expose a ``fingerprint()`` method; this indirection
    exists so cache keys remain stable if internal representations change.
    """
    return plan.fingerprint()


def match_entries(keys: Sequence[tuple], manager) -> dict[tuple, object]:
    """Probe the caching manager for each key; return the subset that hit."""
    matches: dict[tuple, object] = {}
    for key in keys:
        entry = manager.lookup(key)
        if entry is not None:
            matches[key] = entry
    return matches
