"""Cross-query scan coalescing (ROADMAP item 1, the serving layer).

Under concurrent multi-client traffic the worst cache behaviour is the
*thundering herd*: N clients arrive at a cold dataset at once, every one of
them finds the field caches empty, and the same file is parsed N times —
the Nth parse finishing just in time to be thrown away because the first
already populated the cache.

The :class:`ScanCoalescer` is a keyed in-flight table mounted in front of
the :class:`~repro.caching.manager.CacheManager`.  Before executing, a query
whose plan contains a *cold* raw scan asks the coalescer for a lease on the
dataset:

* the first arrival becomes the **leader** — it receives a
  :class:`ScanLease`, executes normally (its scan materializes and, via the
  caching policy, stores the converted columns), and releases the lease in
  the engine's ``finally``;
* every other arrival **waits** on the leader's event and then re-probes the
  cache — if the leader's materialization landed, the waiter executes
  against warm caches without touching the raw file.

Waiting is cooperative: the waiter re-checks its
:class:`~repro.resilience.context.QueryContext` every slice, so deadlines
and cancellation interrupt a coalesced wait exactly like they interrupt a
scan.  Coalescing is strictly an optimization — a waiter that wakes to a
still-cold cache (leader failed, or the policy declined to store) simply
retries for leadership or falls through and scans on its own; correctness
never depends on the leader succeeding.

Synchronisation: the in-flight table is guarded by ``ScanCoalescer._lock``
(declared in :mod:`repro.core.concurrency`'s ``GUARDED_BY`` table); waiters
block on a per-key :class:`threading.Event` *outside* the lock, so the lock
is only ever held for dictionary operations.
"""

from __future__ import annotations

import threading

from repro.core.concurrency import make_lock
from repro.resilience.context import QueryContext

#: How long a waiter sleeps between cooperative deadline/cancellation checks.
WAIT_SLICE_SECONDS = 0.02


class ScanLease:
    """Held by the leader of one in-flight cold scan; releasing it (always in
    a ``finally``, idempotent) wakes every coalesced waiter."""

    __slots__ = ("_coalescer", "key", "_event", "_released")

    def __init__(self, coalescer: "ScanCoalescer", key, event: threading.Event):
        self._coalescer = coalescer
        self.key = key
        self._event = event
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._coalescer._finish(self.key, self._event)


class ScanCoalescer:
    """Keyed in-flight-scan table: one leader per cold dataset, everyone
    else waits for the leader's materialization and re-probes the cache."""

    def __init__(self) -> None:
        self._lock = make_lock("ScanCoalescer._lock")
        self._inflight: dict = {}

    def acquire(self, key, context: QueryContext | None = None) -> ScanLease | None:
        """Try to lead the in-flight scan of ``key``.

        Returns a :class:`ScanLease` when this caller is the leader (it must
        ``release()`` the lease after its execution finishes).  Otherwise
        blocks until the current leader finishes and returns ``None`` — the
        caller then re-probes the cache (and may call ``acquire`` again if
        the cache is still cold).
        """
        with self._lock:
            event = self._inflight.get(key)
            if event is None:
                event = threading.Event()
                self._inflight[key] = event
                return ScanLease(self, key, event)
        while not event.wait(WAIT_SLICE_SECONDS):
            if context is not None:
                context.check()
        return None

    def _finish(self, key, event: threading.Event) -> None:
        with self._lock:
            if self._inflight.get(key) is event:
                del self._inflight[key]
        event.set()

    @property
    def inflight_count(self) -> int:
        """Live in-flight leader count (scrape-time gauge)."""
        with self._lock:
            return len(self._inflight)
