"""Caching policies (§6, "Cache Policies").

The policy decides *what* gets cached as a side effect of execution.  The
paper's default policy, reproduced here, is:

* eagerly cache primitive values read from verbose sources (JSON, CSV) —
  especially fields used in filtering predicates — because re-accessing and
  re-converting them dominates query time,
* do **not** cache variable-length string fields from CSV/JSON files, which
  are verbose and would pollute the cache arena,
* do not cache fields read from binary sources (they are already cheap),
* cache the materialized sides of radix joins (implicit caching: the join is
  a blocking operator, so its materialization comes for free),
* bias eviction so that caches built from costlier sources survive longer
  (JSON ≻ CSV ≻ binary).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Relative re-access cost per source format; higher values make a cache
#: entry more valuable and therefore less likely to be evicted.
FORMAT_BIAS = {
    "json": 4.0,
    "csv": 2.0,
    "binary_row": 1.0,
    "binary_column": 1.0,
    "cache": 1.0,
}


@dataclass
class CachingPolicy:
    """Tunable caching policy."""

    cache_numeric_fields: bool = True
    cache_string_fields: bool = False
    cache_binary_sources: bool = False
    cache_join_sides: bool = True
    cache_unnest_output: bool = True

    def should_cache_field(self, source_format: str, type_name: str) -> bool:
        """Should a scanned/converted field column from ``source_format`` with
        values of ``type_name`` be added to the cache?"""
        if source_format in ("binary_row", "binary_column", "cache") and \
                not self.cache_binary_sources:
            return False
        if type_name == "string":
            return self.cache_string_fields
        return self.cache_numeric_fields

    def should_cache_join_side(self, source_formats: set[str]) -> bool:
        """Should the materialized build side of a join be kept for reuse?"""
        return self.cache_join_sides

    def format_bias(self, source_format: str) -> float:
        """Eviction bias of a cache entry built from ``source_format``."""
        return FORMAT_BIAS.get(source_format, 1.0)


class DefaultCachingPolicy(CachingPolicy):
    """The paper's default policy (alias of :class:`CachingPolicy` defaults)."""


class AggressiveCachingPolicy(CachingPolicy):
    """Cache everything, including strings and binary sources.

    Used by the ablation benchmarks to show why the default policy avoids
    string fields (cache pollution).
    """

    def __init__(self) -> None:
        super().__init__(
            cache_numeric_fields=True,
            cache_string_fields=True,
            cache_binary_sources=True,
            cache_join_sides=True,
            cache_unnest_output=True,
        )


class NoCachingPolicy(CachingPolicy):
    """Disable caching entirely (baseline configuration of §7.1)."""

    def __init__(self) -> None:
        super().__init__(
            cache_numeric_fields=False,
            cache_string_fields=False,
            cache_binary_sources=False,
            cache_join_sides=False,
            cache_unnest_output=False,
        )

    def should_cache_field(self, source_format: str, type_name: str) -> bool:
        return False

    def should_cache_join_side(self, source_formats: set[str]) -> bool:
        return False
