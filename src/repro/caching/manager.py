"""Caching manager (§6).

The caching manager owns the binary caches that the engine materializes as a
side effect of query execution.  Each entry records the plan-fragment key that
produced it, the source dataset and format (which drives the eviction bias),
its size (accounted against the memory manager's cache arena) and an LRU
timestamp.

Eviction is a *format-biased* LRU: when the arena is full, the entry with the
lowest ``bias / recency`` score is dropped first, so caches over JSON survive
longer than caches over CSV, which survive longer than caches over binary
data (``JSON ≻ CSV ≻ Binary``), mirroring the paper's policy.

One manager is shared by both batch tiers, the codegen runtime and the
planner's access-path selection, from every query thread, so every public
method takes ``self._lock``.  Mutators delegate to ``*_locked`` internals
(``store`` must evict while holding the lock; re-taking it would self-
deadlock).  The arena and the statistics object are mutated only through
those locked paths (``EXTERNALLY_GUARDED`` in ``core/concurrency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.caching.policies import CachingPolicy, DefaultCachingPolicy
from repro.core.concurrency import make_lock
from repro.errors import CacheError
from repro.storage.memory import CacheArena


@dataclass
class CacheEntry:
    """One materialized cache."""

    key: tuple
    kind: str
    dataset: str
    source_format: str
    data: Any
    size_bytes: int
    bias: float
    description: str = ""
    last_used: int = 0
    hits: int = 0

    def touch(self, clock: int) -> None:
        self.last_used = clock
        self.hits += 1


@dataclass
class CacheStatistics:
    """Aggregate counters exposed for benchmarks and tests."""

    lookups: int = 0
    hits: int = 0
    stores: int = 0
    evictions: int = 0
    rejected: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CacheManager:
    """Registry, admission control and eviction for adaptive caches."""

    def __init__(
        self,
        arena: CacheArena,
        policy: CachingPolicy | None = None,
    ):
        self.arena = arena
        self.policy = policy if policy is not None else DefaultCachingPolicy()
        self.stats = CacheStatistics()
        self._entries: dict[tuple, CacheEntry] = {}
        self._clock = 0
        self._lock = make_lock("CacheManager._lock")

    # -- lookup ----------------------------------------------------------------

    def lookup(self, key: tuple) -> CacheEntry | None:
        """Return the entry for ``key`` (updating its recency) or ``None``."""
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._clock += 1
            entry.touch(self._clock)
            self.stats.hits += 1
            return entry

    def peek(self, key: tuple) -> CacheEntry | None:
        """Return the entry for ``key`` without touching statistics."""
        return self._entries.get(key)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    # -- admission ---------------------------------------------------------------

    def store(
        self,
        key: tuple,
        data: Any,
        *,
        kind: str,
        dataset: str,
        source_format: str,
        description: str = "",
        size_bytes: int | None = None,
    ) -> CacheEntry | None:
        """Admit a new cache entry, evicting lower-value entries if needed.

        Returns the entry, or ``None`` when the entry cannot fit even after
        evicting everything cheaper (it is then simply not cached — caching is
        best-effort and never fails a query).
        """
        # Size estimation can be expensive (object-array walks); do it before
        # taking the lock.  The bias lookup is a pure policy read.
        size = size_bytes if size_bytes is not None else estimate_size(data)
        bias = self.policy.format_bias(source_format)
        with self._lock:
            if key in self._entries:
                entry = self._entries[key]
                self._clock += 1
                entry.touch(self._clock)
                return entry
            if size > self.arena.budget_bytes:
                self.stats.rejected += 1
                return None
            self._make_room_locked(size, bias)
            if not self.arena.can_fit(size):
                self.stats.rejected += 1
                return None
            self.arena.register(_arena_name(key), size)
            self._clock += 1
            entry = CacheEntry(
                key=key,
                kind=kind,
                dataset=dataset,
                source_format=source_format,
                data=data,
                size_bytes=size,
                bias=bias,
                description=description,
                last_used=self._clock,
            )
            self._entries[key] = entry
            self.stats.stores += 1
            return entry

    def _make_room_locked(self, size: int, incoming_bias: float) -> None:
        """Evict entries (cheapest-to-rebuild, least-recently-used first) until
        ``size`` bytes fit or nothing evictable remains.  Lock held."""
        while not self.arena.can_fit(size):
            victim = self._pick_victim(incoming_bias)
            if victim is None:
                return
            self._evict_locked(victim.key)

    def _pick_victim(self, incoming_bias: float) -> CacheEntry | None:
        candidates = list(self._entries.values())
        if not candidates:
            return None
        # Format-biased LRU: score = bias * recency rank; lowest score goes.
        ordered = sorted(candidates, key=lambda e: (e.bias, e.last_used))
        victim = ordered[0]
        return victim

    # -- eviction / invalidation ----------------------------------------------------

    def evict(self, key: tuple) -> None:
        with self._lock:
            self._evict_locked(key)

    def _evict_locked(self, key: tuple) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self.arena.unregister(_arena_name(key))
        self.stats.evictions += 1

    def invalidate_dataset(self, dataset: str) -> int:
        """Drop every cache built from ``dataset`` (used on data updates, §4:
        Proteus drops and rebuilds affected auxiliary structures)."""
        with self._lock:
            keys = [
                key for key, entry in self._entries.items() if entry.dataset == dataset
            ]
            for key in keys:
                self._evict_locked(key)
            return len(keys)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._entries):
                self._evict_locked(key)

    # -- introspection -----------------------------------------------------------------

    def entries(self) -> list[CacheEntry]:
        with self._lock:
            return list(self._entries.values())

    def entries_for_dataset(self, dataset: str) -> list[CacheEntry]:
        with self._lock:
            return [
                entry for entry in self._entries.values() if entry.dataset == dataset
            ]

    @property
    def used_bytes(self) -> int:
        return self.arena.used_bytes

    def total_size_for_format(self, source_format: str) -> int:
        with self._lock:
            return sum(
                entry.size_bytes
                for entry in self._entries.values()
                if entry.source_format == source_format
            )


def estimate_size(data: Any) -> int:
    """Estimate the in-memory footprint of cached data."""
    if isinstance(data, np.ndarray):
        if data.dtype == object:
            return int(sum(len(str(v)) + 48 for v in data))
        return int(data.nbytes)
    if isinstance(data, dict):
        return sum(estimate_size(value) for value in data.values()) + 64 * len(data)
    if isinstance(data, (list, tuple)):
        return sum(estimate_size(value) for value in data) + 16 * len(data)
    if isinstance(data, (bytes, str)):
        return len(data)
    if hasattr(data, "nbytes"):
        return int(data.nbytes)
    if hasattr(data, "size_bytes"):
        return int(data.size_bytes)
    return 64


def _arena_name(key: tuple) -> str:
    return "cache:" + repr(key)
