"""Adaptive caching: materialized binary caches built as a side effect of query execution."""

from repro.caching.manager import CacheEntry, CacheManager, CacheStatistics
from repro.caching.policies import CachingPolicy, DefaultCachingPolicy
from repro.caching.matching import plan_fingerprint

__all__ = [
    "CacheEntry",
    "CacheManager",
    "CacheStatistics",
    "CachingPolicy",
    "DefaultCachingPolicy",
    "plan_fingerprint",
]
