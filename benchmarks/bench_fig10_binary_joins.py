"""Figure 10: join queries over binary relational data.

Paper shape: DBMS C and DBMS X benefit from sideways information passing and
(for DBMS C) sort-key skipping on selective instances; for less selective
queries Proteus is ahead of the per-tuple row stores and competitive with the
column stores.
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import (
    assert_no_mismatches,
    proteus_binary_adapter,
    proteus_faster_than,
    record_report,
    run_hot,
)
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(3.0)


@pytest.fixture(scope="module")
def report(report_sink):
    result = experiments.figure10(scale=SCALE)
    record_report(report_sink, result, experiments.BINARY_SYSTEMS)
    return result


def test_fig10_shape(benchmark, report):
    assert_no_mismatches(report)
    proteus_faster_than(report, experiments.POSTGRES, experiments.DBMS_X)
    # DBMS C sort-key skipping: selective joins are not more expensive than
    # full ones (tolerance for fixed per-query costs at laptop scale).
    assert report.seconds(experiments.DBMS_C, "join_count_10") <= \
        report.seconds(experiments.DBMS_C, "join_count_100") * 1.5

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_binary_adapter(SCALE, with_orders=True)
    spec = templates.join_query(
        "orders", "lineitem", files.tables.orderkey_threshold(0.5), "2agg", 0.5
    )
    benchmark(run_hot(adapter, spec))
