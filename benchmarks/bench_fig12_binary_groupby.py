"""Figure 12: aggregate (group-by) queries over binary relational data.

Paper shape: MonetDB's count-only fast path gives it the edge when a single
COUNT is computed per group; for queries with additional aggregates Proteus is
the fastest system; the per-tuple row stores trail throughout.
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import (
    assert_no_mismatches,
    proteus_binary_adapter,
    proteus_faster_than,
    record_report,
    run_hot,
)
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(3.0)


@pytest.fixture(scope="module")
def report(report_sink):
    result = experiments.figure12(scale=SCALE)
    record_report(report_sink, result, experiments.BINARY_SYSTEMS)
    return result


def test_fig12_shape(benchmark, report):
    assert_no_mismatches(report)
    proteus_faster_than(report, experiments.POSTGRES, experiments.DBMS_X)
    # MonetDB count-only fast path: the single-aggregate variant is not more
    # expensive than its own 4-aggregate variant (tolerance for millisecond-
    # scale timing noise).
    assert report.seconds(experiments.MONET, "groupby_1agg_100") <= \
        report.seconds(experiments.MONET, "groupby_4agg_100") * 1.3

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_binary_adapter(SCALE)
    spec = templates.groupby_query(
        "lineitem", files.tables.orderkey_threshold(0.5), 4, 0.5
    )
    benchmark(run_hot(adapter, spec))
