"""Figure 8: selection queries (1/3/4 predicates) over binary relational data.

Paper shape: Proteus and the column stores dominate the row stores; the column
stores' operator-at-a-time materialization grows with selectivity, while the
row stores pay per tuple regardless.
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import (
    assert_no_mismatches,
    proteus_binary_adapter,
    proteus_faster_than,
    record_report,
    run_hot,
)
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(3.0)


@pytest.fixture(scope="module")
def report(report_sink):
    result = experiments.figure8(scale=SCALE)
    record_report(report_sink, result, experiments.BINARY_SYSTEMS)
    return result


def test_fig08_shape(benchmark, report):
    assert_no_mismatches(report)
    proteus_faster_than(report, experiments.POSTGRES, experiments.DBMS_X)

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_binary_adapter(SCALE)
    spec = templates.selection_query(
        "lineitem", files.tables.orderkey_threshold(0.5), 4, 0.5
    )
    benchmark(run_hot(adapter, spec))
