"""Figure 11: aggregate (group-by) queries over JSON data.

Paper shape: the radix-hash-based grouping of Proteus keeps it ahead of the
systems that loaded the JSON into their own binary formats; the gap widens
with the number of aggregates, which hurts MongoDB's per-document pipeline the
most.
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import (
    assert_no_mismatches,
    proteus_faster_than,
    proteus_json_adapter,
    record_report,
    run_hot,
)
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(0.3)


@pytest.fixture(scope="module")
def report(report_sink):
    result = experiments.figure11(scale=SCALE)
    record_report(report_sink, result, experiments.JSON_SYSTEMS_CORE)
    return result


def test_fig11_shape(benchmark, report):
    assert_no_mismatches(report)
    proteus_faster_than(report, experiments.DBMS_X)
    proteus_faster_than(report, experiments.POSTGRES, experiments.MONGO, margin=0.8)

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_json_adapter(SCALE, {"lineitem": ""})
    spec = templates.groupby_query(
        "lineitem", files.tables.orderkey_threshold(0.5), 4, 0.5
    )
    benchmark(run_hot(adapter, spec))
