"""Shared helpers for the per-figure benchmark modules."""

from __future__ import annotations

from repro.bench import data as bench_data
from repro.bench.experiments import PROTEUS
from repro.bench.reporting import ExperimentReport, format_matrix
from repro.bench.systems import ProteusAdapter
from repro.workloads import tpch
from repro.workloads.query_spec import QuerySpec


def record_report(report_sink, report: ExperimentReport, systems) -> None:
    """Render a figure-style matrix and add it to the session summary."""
    queries = sorted({measurement.query for measurement in report.measurements})
    report_sink.append(format_matrix(report, queries, list(systems)))


def assert_no_mismatches(report: ExperimentReport) -> None:
    assert not report.notes, f"cross-system result mismatches: {report.notes}"


def proteus_faster_than(
    report: ExperimentReport, *slower_systems: str, margin: float = 1.0
) -> None:
    """Assert the aggregate comparative shape: Proteus beats each given system.

    ``margin`` < 1 tolerates small timing noise for systems whose totals are
    close to Proteus' (the assertion then is "not meaningfully faster than
    Proteus" rather than strictly slower).
    """
    proteus_total = report.total_seconds(PROTEUS)
    for system in slower_systems:
        total = report.total_seconds(system)
        assert total > proteus_total * margin, (
            f"expected {system} ({total:.4f}s) to be slower than proteus "
            f"({proteus_total:.4f}s, margin {margin})"
        )


def proteus_json_adapter(scale: float, datasets: dict[str, str],
                         enable_caching: bool = False) -> ProteusAdapter:
    """A warm Proteus adapter over the JSON materializations of a TPC-H instance."""
    files = bench_data.tpch_files(scale=scale)
    adapter = ProteusAdapter(enable_caching=enable_caching)
    paths = {
        "lineitem": (files.lineitem_json, tpch.LINEITEM_SCHEMA),
        "orders": (files.orders_json, tpch.ORDERS_SCHEMA),
        "orders_denorm": (files.orders_denormalized_json, tpch.DENORMALIZED_ORDERS_SCHEMA),
    }
    for name in datasets:
        path, schema = paths[name]
        adapter.attach_json(name, path, schema=schema)
        adapter.warm_up(name)
    return adapter


def proteus_binary_adapter(scale: float, with_orders: bool = False) -> ProteusAdapter:
    """A Proteus adapter over the binary-column materializations."""
    files = bench_data.tpch_files(scale=scale)
    adapter = ProteusAdapter()
    adapter.attach_binary_columns("lineitem", files.lineitem_columns)
    if with_orders:
        adapter.attach_binary_columns("orders", files.orders_columns)
    return adapter


def run_hot(adapter: ProteusAdapter, spec: QuerySpec):
    """Callable handed to pytest-benchmark: one hot execution of the query."""
    adapter.execute(spec)  # warm the compiled-query cache once
    return lambda: adapter.execute(spec)
