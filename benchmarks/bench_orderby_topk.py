"""ORDER BY / LIMIT benchmark: columnar sort kernels vs the boxed seed sort.

The seed engine applied ORDER BY by boxing every buffer into Python objects
(``.tolist()``) and running ``list.sort`` with per-element lambda keys — even
when a ``LIMIT 10`` followed.  The columnar sort subsystem
(:mod:`repro.core.sort`) replaces that with dtype-specialized NumPy kernels,
a bounded streaming top-K when a LIMIT accompanies the sort, and per-morsel
sorted runs merged k-way on the parallel tier.

This benchmark gates the two specialization claims on binary-column data
(1M rows by default):

* the ``lexsort`` kernel must beat the boxed seed sort by >= 5x on a full
  numeric ORDER BY,
* the ``topk`` kernel must beat its own full sort by >= 10x for
  ORDER BY + LIMIT 10,

and checks the parallel tier end-to-end: per-morsel sort + k-way merge must
produce **bit-identical** output to the serial tier at 1, 2 and 8 workers.

Standalone script (like ``bench_vectorized_fallback.py``) so CI can smoke
it::

    PYTHONPATH=src python benchmarks/bench_orderby_topk.py --quick

Exits non-zero if a speedup gate fails or any tier disagrees on results.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

import numpy as np

TOPK_LIMIT = 10


def build_dataset(directory: str, rows: int) -> str:
    from repro.core import types as t
    from repro.storage.binary_format import write_column_table

    rng = np.random.RandomState(29)
    schema = t.make_schema({"id": "int", "v": "float"})
    columns = {
        "id": np.arange(rows, dtype=np.int64),
        "v": rng.uniform(0.0, 1_000_000.0, size=rows),
    }
    path = f"{directory}/orderby_columns"
    write_column_table(path, columns, schema)
    return path


def make_engine(path: str, **kwargs):
    from repro import ProteusEngine

    engine = ProteusEngine(enable_caching=False, **kwargs)
    engine.register_binary_columns("events", path)
    return engine


def boxed_seed_sort(
    names: list[str],
    length: int,
    data: dict[str, np.ndarray],
    order_by: list[tuple[str, bool]],
    limit: int | None,
) -> dict[str, np.ndarray]:
    """The seed engine's ORDER BY epilogue, verbatim semantics: box every
    key buffer into Python objects and ``list.sort`` with lambda keys."""
    indices = list(range(length))
    for column, ascending in reversed(order_by):
        assert ascending, "the benchmark exercises the ascending seed path"
        values = [None if v != v else v for v in data[column].tolist()]
        indices.sort(key=lambda i: (values[i] is None, values[i]))
    if limit is not None:
        indices = indices[:limit]
    taken = np.asarray(indices, dtype=np.int64)
    return {name: buffer[taken] for name, buffer in data.items()}


def best_of(repeats: int, fn, *args):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="table cardinality (default 1M)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per measurement (best-of)")
    parser.add_argument("--lexsort-speedup", type=float, default=5.0,
                        help="required lexsort-over-seed-sort speedup")
    parser.add_argument("--topk-speedup", type=float, default=10.0,
                        help="required top-K-over-full-sort speedup")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 300k rows, same gates")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 300_000)

    from repro.core import sort as sortlib

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as directory:
        path = build_dataset(directory, args.rows)

        # -- kernel-level: the sort stage itself, on the engine's buffers ----
        engine = make_engine(path)
        full = engine.query("SELECT id, v FROM events")
        names = list(full.columns)
        data = {name: full.column_array(name).copy() for name in names}
        order_by = [("v", True)]

        seed_seconds, seed_sorted = best_of(
            args.repeats, boxed_seed_sort, names, args.rows, data, order_by, None
        )
        lex_seconds, lex_result = best_of(
            args.repeats, sortlib.sort_columns, names, args.rows, data, order_by, None
        )
        _, lex_sorted, lex_strategy = lex_result
        topk_seconds, topk_result = best_of(
            args.repeats, sortlib.sort_columns, names, args.rows, data, order_by,
            TOPK_LIMIT,
        )
        _, topk_sorted, topk_strategy = topk_result

        if lex_strategy != sortlib.STRATEGY_LEXSORT:
            failures.append(f"full sort ran {lex_strategy!r}, expected lexsort")
        if topk_strategy != sortlib.STRATEGY_TOPK:
            failures.append(f"bounded sort ran {topk_strategy!r}, expected topk")
        for name in names:
            if not np.array_equal(seed_sorted[name], lex_sorted[name]):
                failures.append(f"lexsort disagrees with the seed sort on {name!r}")
            if not np.array_equal(lex_sorted[name][:TOPK_LIMIT], topk_sorted[name]):
                failures.append(f"topk disagrees with the full sort on {name!r}")

        lex_speedup = seed_seconds / lex_seconds if lex_seconds else float("inf")
        topk_speedup = lex_seconds / topk_seconds if topk_seconds else float("inf")
        print(f"rows={args.rows}  ORDER BY v (numeric, binary-column data)")
        print(f"  seed boxed sort      {seed_seconds * 1e3:9.1f} ms")
        print(f"  lexsort kernel       {lex_seconds * 1e3:9.1f} ms  "
              f"({lex_speedup:.1f}x over seed, gate >= {args.lexsort_speedup:.0f}x)")
        print(f"  topk kernel (K={TOPK_LIMIT})   {topk_seconds * 1e3:9.1f} ms  "
              f"({topk_speedup:.1f}x over full sort, gate >= {args.topk_speedup:.0f}x)")
        if lex_speedup < args.lexsort_speedup:
            failures.append(
                f"lexsort speedup {lex_speedup:.2f}x below the "
                f"{args.lexsort_speedup:.1f}x gate"
            )
        if topk_speedup < args.topk_speedup:
            failures.append(
                f"top-K speedup {topk_speedup:.2f}x below the "
                f"{args.topk_speedup:.1f}x gate"
            )

        # -- end-to-end: every tier, full sort and streaming top-K ----------
        print("end-to-end (query time, one run):")
        reference_full = None
        reference_topk = None
        configurations = [
            ("codegen", {}),
            ("vectorized", {"enable_codegen": False}),
            ("vectorized-parallel w2", {"enable_codegen": False,
                                        "parallel_workers": 2}),
            ("vectorized-parallel w8", {"enable_codegen": False,
                                        "parallel_workers": 8}),
        ]
        for label, config in configurations:
            engine = make_engine(path, **config)
            started = time.perf_counter()
            result_full = engine.query("SELECT id, v FROM events ORDER BY v")
            full_seconds = time.perf_counter() - started
            started = time.perf_counter()
            result_topk = engine.query(
                f"SELECT id, v FROM events ORDER BY v LIMIT {TOPK_LIMIT}"
            )
            topk_seconds = time.perf_counter() - started
            print(f"  {label:24s} full {full_seconds * 1e3:8.1f} ms "
                  f"[{result_full.profile.sort_strategy}]   "
                  f"top-{TOPK_LIMIT} {topk_seconds * 1e3:7.1f} ms "
                  f"[{result_topk.profile.sort_strategy}]")
            # Bit-identical output across tiers and worker counts: compare
            # the backing buffers, not boxed rows.
            if reference_full is None:
                reference_full, reference_topk = result_full, result_topk
                continue
            for name in names:
                if not np.array_equal(
                    reference_full.column_array(name), result_full.column_array(name)
                ):
                    failures.append(
                        f"{label}: full ORDER BY column {name!r} differs from "
                        "the serial reference"
                    )
                if not np.array_equal(
                    reference_topk.column_array(name), result_topk.column_array(name)
                ):
                    failures.append(
                        f"{label}: top-{TOPK_LIMIT} column {name!r} differs "
                        "from the serial reference"
                    )

    if args.json_path:
        import json

        record = {
            "name": "bench_orderby_topk",
            "rows": args.rows,
            "kernels": {
                "seed_boxed_sort_seconds": seed_seconds,
                "lexsort_seconds": lex_seconds,
                "topk_seconds": topk_seconds,
                "lexsort_rows_per_sec": args.rows / lex_seconds if lex_seconds else 0.0,
            },
            "lexsort_speedup_over_seed": lex_speedup,
            "lexsort_speedup_gate": args.lexsort_speedup,
            "topk_speedup_over_full_sort": topk_speedup,
            "topk_speedup_gate": args.topk_speedup,
            "tiers": {
                "strategies": [lex_strategy, topk_strategy],
            },
            "ok": not failures,
            "failures": failures,
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("ok: sort kernels hold their gates and every tier agrees")
    return 0


if __name__ == "__main__":
    sys.exit(main())
