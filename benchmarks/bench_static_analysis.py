"""Static-analysis benchmark: the nullability fast paths the analyzer unlocks.

The prepare-time analyzer (:mod:`repro.core.analysis`) proves columns
non-nullable from collected statistics (``analyze()`` observed zero missing
values).  Two execution paths consume the proof:

* the vectorized tier's batch aggregates skip the per-batch valid-mask pass
  (a NaN scan over floats, a per-element probe over object columns) for
  aggregate arguments proven non-null,
* the columnar sort kernels skip the per-element missing scan when every
  sort key is proven non-null (object string keys are the expensive case).

Both are gated at >= 1.2x here — measured over the same buffers and checked
bit-identical against the masked path, so the hint can only buy time, never
change results.  A third end-to-end check reruns a grouped aggregate with
and without statistics and requires identical rows.

Standalone script (like ``bench_orderby_topk.py``) so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_static_analysis.py --quick

Exits non-zero if a speedup gate fails or any hinted result disagrees.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

import numpy as np

TOPK_LIMIT = 10


def build_dataset(directory: str, rows: int) -> str:
    from repro.core import types as t
    from repro.storage.binary_format import write_column_table

    rng = np.random.RandomState(17)
    schema = t.make_schema({"id": "int", "v": "float"})
    columns = {
        "id": np.arange(rows, dtype=np.int64),
        "v": rng.uniform(0.0, 1_000_000.0, size=rows),
    }
    path = f"{directory}/analysis_columns"
    write_column_table(path, columns, schema)
    return path


def make_engine(path: str, analyze: bool, **kwargs):
    from repro import ProteusEngine

    engine = ProteusEngine(enable_caching=False, enable_codegen=False, **kwargs)
    engine.register_binary_columns("events", path, analyze=analyze)
    return engine


def best_of(repeats: int, fn, *args):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


AGGREGATE_QUERY = (
    "SELECT SUM(v) AS s, MIN(v) AS mn, MAX(v) AS mx, AVG(v) AS av FROM events"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=2_000_000,
                        help="table cardinality (default 2M)")
    parser.add_argument("--sort-rows", type=int, default=1_000_000,
                        help="object-key sort cardinality (default 1M)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per measurement (best-of)")
    parser.add_argument("--speedup", type=float, default=1.2,
                        help="required hinted-over-masked speedup per gate")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 600k/300k rows, same gates")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 600_000)
        args.sort_rows = min(args.sort_rows, 300_000)

    from repro.core import sort as sortlib

    failures: list[str] = []

    # -- gate 1: batch aggregates, valid-mask pass vs analyzer hint ----------
    with tempfile.TemporaryDirectory() as directory:
        path = build_dataset(directory, args.rows)

        masked_engine = make_engine(path, analyze=False)
        hinted_engine = make_engine(path, analyze=True)
        masked_prepared = masked_engine.prepare(AGGREGATE_QUERY)
        hinted_prepared = hinted_engine.prepare(AGGREGATE_QUERY)
        if masked_prepared.analysis.hints.non_null_aggregate_args:
            failures.append("unanalyzed dataset produced aggregate hints")
        if len(hinted_prepared.analysis.hints.non_null_aggregate_args) != 4:
            failures.append("analyze() did not prove all four aggregate args")
        masked_prepared.execute()
        hinted_prepared.execute()
        masked_seconds, masked_result = best_of(
            args.repeats, masked_prepared.execute
        )
        hinted_seconds, hinted_result = best_of(
            args.repeats, hinted_prepared.execute
        )
        if masked_result.rows != hinted_result.rows:
            failures.append("hinted aggregates disagree with the masked path")
        if hinted_result.tier != "vectorized":
            failures.append(
                f"aggregate query ran on {hinted_result.tier!r}, expected the "
                "vectorized tier"
            )

    aggregate_speedup = (
        masked_seconds / hinted_seconds if hinted_seconds else float("inf")
    )
    print(f"rows={args.rows}  {AGGREGATE_QUERY}")
    print(f"  valid-mask pass      {masked_seconds * 1e3:9.1f} ms")
    print(f"  analyzer hint        {hinted_seconds * 1e3:9.1f} ms  "
          f"({aggregate_speedup:.2f}x, gate >= {args.speedup:.1f}x)")
    if aggregate_speedup < args.speedup:
        failures.append(
            f"aggregate hint speedup {aggregate_speedup:.2f}x below the "
            f"{args.speedup:.1f}x gate"
        )

    # -- gate 2: columnar sort over object string keys -----------------------
    rng = np.random.RandomState(23)
    n = args.sort_rows
    tags = np.array(
        [f"tag{value:06d}" for value in rng.randint(0, 50_000, n)], dtype=object
    )
    names = ["tag", "id"]
    data = {"tag": tags, "id": np.arange(n, dtype=np.int64)}

    def run_sort(non_null, limit):
        return sortlib.sort_columns(
            names, n, dict(data), [("tag", True)], limit, non_null
        )

    masked_sort_seconds, masked_sorted = best_of(
        args.repeats, run_sort, frozenset(), None
    )
    hinted_sort_seconds, hinted_sorted = best_of(
        args.repeats, run_sort, frozenset({"tag"}), None
    )
    topk_masked_seconds, masked_topk = best_of(
        args.repeats, run_sort, frozenset(), TOPK_LIMIT
    )
    topk_hinted_seconds, hinted_topk = best_of(
        args.repeats, run_sort, frozenset({"tag"}), TOPK_LIMIT
    )
    for masked_out, hinted_out, label in [
        (masked_sorted, hinted_sorted, "full sort"),
        (masked_topk, hinted_topk, f"top-{TOPK_LIMIT}"),
    ]:
        for name in names:
            if not np.array_equal(masked_out[1][name], hinted_out[1][name]):
                failures.append(
                    f"hinted {label} disagrees with the masked path on {name!r}"
                )

    sort_speedup = (
        masked_sort_seconds / hinted_sort_seconds
        if hinted_sort_seconds
        else float("inf")
    )
    topk_speedup = (
        topk_masked_seconds / topk_hinted_seconds
        if topk_hinted_seconds
        else float("inf")
    )
    print(f"rows={n}  ORDER BY tag (object string keys)")
    print(f"  missing-scan sort    {masked_sort_seconds * 1e3:9.1f} ms")
    print(f"  analyzer hint        {hinted_sort_seconds * 1e3:9.1f} ms  "
          f"({sort_speedup:.2f}x, gate >= {args.speedup:.1f}x)")
    print(f"  top-{TOPK_LIMIT} masked        {topk_masked_seconds * 1e3:9.1f} ms")
    print(f"  top-{TOPK_LIMIT} hinted        {topk_hinted_seconds * 1e3:9.1f} ms  "
          f"({topk_speedup:.2f}x)")
    if sort_speedup < args.speedup:
        failures.append(
            f"sort hint speedup {sort_speedup:.2f}x below the "
            f"{args.speedup:.1f}x gate"
        )

    if args.json_path:
        import json

        record = {
            "name": "bench_static_analysis",
            "rows": args.rows,
            "sort_rows": args.sort_rows,
            "aggregates": {
                "masked_seconds": masked_seconds,
                "hinted_seconds": hinted_seconds,
                "speedup": aggregate_speedup,
            },
            "sort": {
                "masked_seconds": masked_sort_seconds,
                "hinted_seconds": hinted_sort_seconds,
                "speedup": sort_speedup,
                "topk_speedup": topk_speedup,
            },
            "speedup_gate": args.speedup,
            "ok": not failures,
            "failures": failures,
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("ok: nullability hints hold their gates and never change results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
