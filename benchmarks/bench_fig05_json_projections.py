"""Figure 5: projection-intensive queries over JSON data.

Paper shape: Proteus is the fastest system on every variant; the row store
with character-encoded JSON (DBMS X) is the slowest; the column stores'
immature JSON support keeps them far behind the native engines; MongoDB is
competitive only for the single-COUNT variant and falls behind as the number
of aggregates grows.
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import (
    assert_no_mismatches,
    proteus_faster_than,
    proteus_json_adapter,
    record_report,
    run_hot,
)
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(0.3)


@pytest.fixture(scope="module")
def report(report_sink):
    result = experiments.figure5(scale=SCALE)
    record_report(report_sink, result, experiments.JSON_SYSTEMS)
    return result


def test_fig05_shape(benchmark, report):
    assert_no_mismatches(report)
    proteus_faster_than(
        report, experiments.DBMS_X, experiments.MONET, experiments.DBMS_C
    )
    # The engines holding pre-parsed binary documents (jsonb / BSON built by C
    # code at load time) end up close to Proteus' in-situ access in this
    # Python reproduction; Proteus must still not lose to them meaningfully.
    proteus_faster_than(report, experiments.POSTGRES, experiments.MONGO, margin=0.6)
    # MongoDB loses ground as the number of aggregates grows (4-aggregate
    # variant costs it proportionally more than the COUNT variant).
    mongo_count = report.seconds(experiments.MONGO, "projection_count_100")
    mongo_4agg = report.seconds(experiments.MONGO, "projection_4agg_100")
    assert mongo_4agg >= mongo_count

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_json_adapter(SCALE, {"lineitem": ""})
    spec = templates.projection_query(
        "lineitem", files.tables.orderkey_threshold(0.5), "4agg", 0.5
    )
    benchmark(run_hot(adapter, spec))
