"""Figure 13: effect of the adaptive caches on JSON queries.

Paper shape: with the selection-predicate columns already cached by a previous
query, both the projection-heavy and the selection-heavy templates speed up;
the projection template benefits the most at high selectivity factors (it only
has to touch the JSON file for the qualifying values to be projected) and the
benefit shrinks as selectivity approaches 100 %.
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import proteus_json_adapter, run_hot
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.bench.reporting import format_speedups
from repro.workloads import templates

SCALE = scaled(0.3)


@pytest.fixture(scope="module")
def speedups(report_sink):
    results = experiments.figure13(scale=SCALE)
    report_sink.append(
        format_speedups(
            "Figure 13: caching speedup (cached predicate vs baseline)",
            {
                f"{r.template} template @ {int(r.selectivity * 100)}%": r.speedup
                for r in results
            },
            baseline_label="Proteus with caching deactivated",
        )
    )
    return results


def test_fig13_shape(benchmark, speedups):
    by_key = {(r.template, r.selectivity): r for r in speedups}
    # Caching never hurts, and helps substantially on selective queries.
    for result in speedups:
        assert result.speedup > 1.0, (result.template, result.selectivity, result.speedup)
    # The projection template's benefit does not grow towards 100% selectivity
    # (at millisecond scale the monotone trend of the paper is subject to
    # timing noise, so a small tolerance is applied).
    assert by_key[("projection", 0.1)].speedup >= \
        by_key[("projection", 1.0)].speedup * 0.75

    # Benchmark the cached-predicate execution itself.
    files = bench_data.tpch_files(scale=SCALE)
    threshold = files.tables.orderkey_threshold(0.1)
    adapter = proteus_json_adapter(SCALE, {"lineitem": ""}, enable_caching=True)
    priming = templates.selection_query("lineitem", threshold, 1, 0.1)
    adapter.execute(priming)
    spec = templates.projection_query("lineitem", threshold, "4agg", 0.1)
    benchmark(run_hot(adapter, spec))
