"""Table 3: accumulated execution time per Symantec workload phase.

Paper shape: the comparators spend considerable time loading the CSV and JSON
batches before they can answer a single query, the federated approach
additionally pays a middleware cost, Q39 is an outlier for the RDBMS approach
(its optimizer is blind to the JSON join key and picks a nested-loop plan),
and Proteus — which loads nothing and adapts its storage while executing — has
the lowest total by a multiple.
"""

import pytest

from repro.bench import experiments
from repro.bench.reporting import format_phase_table

SYSTEMS = (experiments.POSTGRES, experiments.FEDERATED, experiments.PROTEUS)
PHASES = ("Load CSV", "Load JSON", "Middleware", "Q39", "Queries (Rest)")


@pytest.fixture(scope="module")
def results(symantec_results, report_sink):
    breakdown = symantec_results.phase_breakdown()
    totals = symantec_results.totals()
    report_sink.append(
        format_phase_table(
            "Table 3: execution time per Symantec workload phase (seconds)",
            list(SYSTEMS), list(PHASES), breakdown, totals,
        )
    )
    return symantec_results


def test_table3_shape(benchmark, results):
    breakdown = results.phase_breakdown()
    totals = results.totals()

    # The comparators pay a load cost; Proteus does not.
    assert breakdown.get((experiments.POSTGRES, "Load CSV"), 0.0) > 0
    assert breakdown.get((experiments.POSTGRES, "Load JSON"), 0.0) > 0
    assert breakdown.get((experiments.PROTEUS, "Load CSV"), 0.0) == 0.0
    assert breakdown.get((experiments.PROTEUS, "Load JSON"), 0.0) == 0.0
    # Only the federated approach has a middleware component.
    assert breakdown.get((experiments.FEDERATED, "Middleware"), 0.0) > 0
    assert breakdown.get((experiments.PROTEUS, "Middleware"), 0.0) == 0.0
    # Q39 is disproportionately expensive for the RDBMS approach (nested-loop
    # join because the JSON join key is opaque to its optimizer).
    postgres_q39 = breakdown.get((experiments.POSTGRES, "Q39"), 0.0)
    proteus_q39 = breakdown.get((experiments.PROTEUS, "Q39"), 0.0)
    assert postgres_q39 > proteus_q39 * 3
    # Aggregate totals: Proteus is the fastest approach end to end.
    assert totals[experiments.PROTEUS] < totals[experiments.FEDERATED]
    assert totals[experiments.PROTEUS] < totals[experiments.POSTGRES]

    # Give pytest-benchmark something meaningful to time: the totals
    # computation over the collected measurements (cheap bookkeeping).
    benchmark(results.totals)
