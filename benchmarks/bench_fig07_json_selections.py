"""Figure 7: selection queries (1/3/4 predicates) over JSON data.

Paper shape: Proteus converts predicate values on the fly yet beats the
systems operating over pre-loaded binary JSON, because after extraction its
generated code eliminates the remaining per-tuple CPU overheads; DBMS X's
character-encoded JSON makes it the slowest.
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import (
    assert_no_mismatches,
    proteus_faster_than,
    proteus_json_adapter,
    record_report,
    run_hot,
)
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(0.3)


@pytest.fixture(scope="module")
def report(report_sink):
    result = experiments.figure7(scale=SCALE)
    record_report(report_sink, result, experiments.JSON_SYSTEMS_CORE)
    return result


def test_fig07_shape(benchmark, report):
    assert_no_mismatches(report)
    proteus_faster_than(report, experiments.DBMS_X)
    # See EXPERIMENTS.md: the margin over the binary-document engines is
    # compressed in this reproduction because every predicate column is
    # re-extracted from the raw JSON per query (caching is off here).
    proteus_faster_than(report, experiments.POSTGRES, experiments.MONGO, margin=0.5)
    # The character-encoded row store pays per predicate: 4 predicates cost it
    # more than 1 predicate at the same selectivity.
    one = report.seconds(experiments.DBMS_X, "selection_1pred_100")
    four = report.seconds(experiments.DBMS_X, "selection_4pred_100")
    assert four > one

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_json_adapter(SCALE, {"lineitem": ""})
    spec = templates.selection_query(
        "lineitem", files.tables.orderkey_threshold(0.5), 4, 0.5
    )
    benchmark(run_hot(adapter, spec))
