"""Prepared-statement reuse benchmark: compile-once vs per-call specialization.

The paper's per-query specialization pays a fixed frontend cost — parse,
bind, plan, generate and compile code — on every new query fingerprint.  The
dominant serving pattern, however, is *same shape, different constants*: this
benchmark runs N executions of one prepared parameterized query
(``prepare()`` once, ``execute(value)`` N times, one compiled program) against
N cold ``query()`` calls whose literal constants change per call (every call
re-parses, re-plans and re-generates code because the literal is baked into
the plan fingerprint).

Standalone script (like ``bench_vectorized_fallback.py``) so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_prepared_reuse.py --quick

Exits non-zero if prepared reuse fails to beat the cold path by the required
margin, if the prepared path compiles more than one program, or if the two
paths disagree on any result.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

import numpy as np


def build_dataset(directory: str, rows: int) -> str:
    from repro.core import types as t
    from repro.storage.binary_format import write_column_table

    rng = np.random.RandomState(11)
    schema = t.make_schema({"id": "int", "qty": "int", "price": "float"})
    columns = {
        "id": np.arange(rows, dtype=np.int64),
        "qty": rng.randint(0, 100, size=rows).astype(np.int64),
        "price": np.round(rng.uniform(1.0, 1000.0, size=rows), 2),
    }
    path = f"{directory}/prepared_columns"
    write_column_table(path, columns, schema)
    return path


def make_engine(path: str):
    from repro import ProteusEngine

    engine = ProteusEngine(enable_caching=False)
    engine.register_binary_columns("lineitem", path)
    return engine


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=20_000,
                        help="table cardinality (default 20k)")
    parser.add_argument("--executions", type=int, default=40,
                        help="executions per side (distinct constants)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 5k rows, 20 executions")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required prepared-over-cold speedup")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 5_000)
        args.executions = min(args.executions, 20)

    shape = "SELECT COUNT(*) AS n, SUM(price) AS total FROM lineitem WHERE qty < {}"
    thresholds = [1 + (i % 97) for i in range(args.executions)]

    with tempfile.TemporaryDirectory() as directory:
        path = build_dataset(directory, args.rows)
        print(f"dataset: {args.rows} rows binary-column")
        print(f"shape:   {shape.format('?')}  x{args.executions} constants")

        # Cold side: every call is a new literal text -> full frontend
        # (parse, plan, codegen) per call.
        cold_engine = make_engine(path)
        cold_results = []
        started = time.perf_counter()
        for value in thresholds:
            cold_results.append(cold_engine.query(shape.format(value)).rows)
        cold_seconds = time.perf_counter() - started

        # Prepared side: one shape, one compiled program, N bindings.
        prepared_engine = make_engine(path)
        prepared = prepared_engine.prepare(shape.format("?"))
        warm = prepared.execute(thresholds[0])  # includes the one codegen
        prepared_results = []
        started = time.perf_counter()
        for value in thresholds:
            prepared_results.append(prepared.execute(value).rows)
        prepared_seconds = time.perf_counter() - started

        if warm.tier != "codegen":
            print(f"FAIL: expected the codegen tier, ran {warm.tier!r}")
            return 1
        compiled = len(prepared_engine._compiled)
        if compiled != 1:
            print(f"FAIL: prepared side compiled {compiled} programs, expected 1")
            return 1
        last_profile = prepared_engine.last_profile
        if last_profile is None or not last_profile.compiled_from_cache:
            print("FAIL: repeated execution did not reuse the compiled program")
            return 1
        if prepared_results != cold_results:
            print("FAIL: prepared and cold paths disagree on results")
            return 1

        per_cold = cold_seconds / args.executions * 1e3
        per_prepared = prepared_seconds / args.executions * 1e3
        speedup = cold_seconds / prepared_seconds if prepared_seconds else float("inf")
        print(f"\n{'path':<10} {'total s':>10} {'ms/exec':>10}")
        print(f"{'cold':<10} {cold_seconds:>10.4f} {per_cold:>10.3f}")
        print(f"{'prepared':<10} {prepared_seconds:>10.4f} {per_prepared:>10.3f}")
        failures: list[str] = []
        if speedup < args.min_speedup:
            failures.append(
                f"prepared reuse speedup {speedup:.1f}x is below the "
                f"required {args.min_speedup:.1f}x"
            )
        if args.json_path:
            import json

            record = {
                "name": "bench_prepared_reuse",
                "rows": args.rows,
                "executions": args.executions,
                "shape": shape.format("?"),
                "tier": warm.tier,
                "cold_seconds": cold_seconds,
                "prepared_seconds": prepared_seconds,
                "executions_per_sec": (
                    args.executions / prepared_seconds if prepared_seconds else 0.0
                ),
                "speedup_over_cold": speedup,
                "speedup_gate": args.min_speedup,
                "ok": not failures,
                "failures": failures,
            }
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2)
        if failures:
            print(f"\nFAIL: {failures[0]}")
            return 1
        print(f"\nOK: prepared reuse beats per-call specialization "
              f"{speedup:.1f}x (one codegen, identical results)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
