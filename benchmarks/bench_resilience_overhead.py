"""Resilience overhead benchmark: deadline checks must be ~free.

The resilience subsystem puts a cooperative check on every tier's hot path —
per batch in the vectorized pipeline, per morsel in the parallel scheduler,
every ``volcano_check_stride`` tuples in the interpreter, per rebound kernel
call under codegen.  The design promise is that a *configured* deadline costs
noise-level overhead (the check is a token test plus one ``time.monotonic()``
per batch) and an *unconfigured* engine pays even less (two attribute loads).

This benchmark times the same prepared query on two engines — one bare, one
with a far-future ``query_timeout_seconds`` so every check actually consults
the clock — and gates the ratio:

* deadline-checked / bare  < 1.03   (noise-level overhead)

The workload runs the vectorized tier with the default 4096-row batches so
the per-batch ``note_batch`` hook fires hundreds of times per execution,
matching how a realistic scan exercises it.  A sanity probe asserts the
checks are real: the same engine with ``timeout=0`` must abort with RES001.

Standalone script (like ``bench_obs_overhead.py``) so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py --quick

Exits non-zero if the overhead gate fails.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

import numpy as np

QUERY = (
    "SELECT SUM(v) AS s, MIN(w) AS mn, MAX(v) AS mx, AVG(w) AS av, "
    "COUNT(*) AS n FROM events WHERE v > 250000.0 AND w < 750000.0"
)


def build_dataset(directory: str, rows: int) -> str:
    from repro.core import types as t
    from repro.storage.binary_format import write_column_table

    rng = np.random.RandomState(31)
    schema = t.make_schema({"id": "int", "v": "float", "w": "float"})
    columns = {
        "id": np.arange(rows, dtype=np.int64),
        "v": rng.uniform(0.0, 1_000_000.0, size=rows),
        "w": rng.uniform(0.0, 1_000_000.0, size=rows),
    }
    path = f"{directory}/resilience_columns"
    write_column_table(path, columns, schema)
    return path


def make_engine(path: str, **kwargs):
    from repro import ProteusEngine

    # The vectorized tier exercises the per-batch deadline hook; caching is
    # off so every execution re-scans (the path carrying the checks).
    engine = ProteusEngine(
        enable_caching=False, enable_codegen=False, enable_parallel=False,
        **kwargs,
    )
    engine.register_binary_columns("events", path)
    return engine


def _median(values: list) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def paired_rounds(repeats: int, functions: dict) -> dict:
    """Per-configuration single-execution timings, taken in paired rounds
    (round-robin within each round so machine drift hits every configuration
    alike; overhead is judged on the median of per-round ratios)."""
    samples: dict = {name: [] for name in functions}
    for _ in range(repeats):
        for name, fn in functions.items():
            started = time.perf_counter()
            fn()
            samples[name].append(time.perf_counter() - started)
    return samples


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="table cardinality (default 1M)")
    parser.add_argument("--repeats", type=int, default=40,
                        help="interleaved timing rounds")
    parser.add_argument("--gate", type=float, default=1.03,
                        help="max deadline-checked/bare ratio (default 1.03)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 400k rows, same gate")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 400_000)

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as directory:
        path = build_dataset(directory, args.rows)

        bare = make_engine(path)
        # A far-future deadline: every per-batch check consults the clock,
        # none ever fires — the steady-state cost of a configured deadline.
        checked = make_engine(path, query_timeout_seconds=3600.0)

        configurations = [("bare", bare), ("deadline", checked)]
        prepared = {}
        for name, engine in configurations:
            statement = engine.prepare(QUERY)
            statement.execute()  # warm-up: file mmap, plan cache
            prepared[name] = statement

        samples = paired_rounds(
            args.repeats,
            {name: prepared[name].execute for name, _ in configurations},
        )
        expected = prepared["bare"].execute().rows
        if prepared["deadline"].execute().rows != expected:
            failures.append("deadline-checked engine changed the query result")

        # Sanity: the measured checks are real — an expired deadline aborts.
        from repro.errors import QueryTimeoutError

        try:
            prepared["deadline"].execute(timeout=0)
        except QueryTimeoutError:
            pass
        else:
            failures.append("timeout=0 did not abort: checks are not wired")

    ratio = _median(
        [c / b for c, b in zip(samples["deadline"], samples["bare"])]
    )

    batches = args.rows // 4096 + 1
    print(f"resilience overhead over {args.rows:,} rows "
          f"(~{batches} deadline checks/execution, median ratio over "
          f"{args.repeats} paired rounds)")
    for name, _ in [("bare", None), ("deadline", None)]:
        print(f"  {name:<9}{min(samples[name]) * 1e3:9.1f} ms (best)")
    print(f"  deadline / bare  {ratio:.3f}x  (gate < {args.gate:.2f}x)")

    if ratio >= args.gate:
        failures.append(
            f"deadline-check overhead {ratio:.3f}x exceeds the "
            f"{args.gate:.2f}x gate"
        )

    if args.json_path:
        import json

        record = {
            "name": "bench_resilience_overhead",
            "rows": args.rows,
            "bare_seconds": min(samples["bare"]),
            "deadline_seconds": min(samples["deadline"]),
            "ratio": ratio,
            "gate": args.gate,
            "ok": not failures,
            "failures": failures,
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("ok: deadline checks stay under the overhead gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
