"""Morsel-driven parallel scaling benchmark: N workers vs serial vectorized.

Times a scan-heavy aggregate over a 1M-row binary-column table on the serial
vectorized tier and on the morsel-driven parallel tier at increasing worker
counts, reporting the speedup.  Like ``bench_vectorized_fallback.py`` this is
a standalone script (no pytest-benchmark session) so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick

Exit status:

* non-zero when any tier disagrees on the result rows, when the parallel
  tier did not actually serve the query, or when the machine has at least as
  many usable cores as workers but the speedup missed the required minimum
  (2x by default, per the subsystem's acceptance bar; ``--quick`` relaxes it
  for noisy shared CI runners),
* zero (with a note) when the machine simply lacks the cores — a 1-core box
  cannot demonstrate parallel speedup, only parallel correctness.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import tempfile
import time


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_dataset(directory: str, rows: int) -> str:
    """Materialize a binary-column table shaped like a TPC-H lineitem slice."""
    import numpy as np

    from repro.core import types as t
    from repro.storage.binary_format import write_column_table

    rng = np.random.RandomState(7)
    schema = t.make_schema(
        {"id": "int", "qty": "int", "price": "float", "discount": "float"}
    )
    columns = {
        "id": np.arange(rows, dtype=np.int64),
        "qty": rng.randint(0, 100, size=rows).astype(np.int64),
        "price": np.round(rng.uniform(1.0, 1000.0, size=rows), 2),
        "discount": np.round(rng.uniform(0.0, 0.1, size=rows), 4),
    }
    path = f"{directory}/scaling_columns"
    write_column_table(path, columns, schema)
    return path


def make_engine(path: str, *, workers: int, batch_size: int):
    from repro import ProteusEngine

    engine = ProteusEngine(
        enable_caching=False,
        enable_codegen=False,
        parallel_workers=workers,
        vectorized_batch_size=batch_size,
    )
    engine.register_binary_columns("lineitem", path)
    return engine


def time_query(engine, query: str, repetitions: int):
    """Best-of-N hot timing (first run warms plug-in state)."""
    result = engine.query(query)
    best = min(
        engine.query(query).execution_seconds for _ in range(repetitions)
    )
    return best, result


def rows_match(left, right) -> bool:
    """Row equality with 1e-9 relative tolerance on float cells (the parallel
    merge reassociates float additions across morsels)."""
    if len(left) != len(right):
        return False
    for row_a, row_b in zip(left, right):
        for a, b in zip(row_a, row_b):
            if isinstance(a, float) and isinstance(b, float):
                if not (math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
                        or (math.isnan(a) and math.isnan(b))):
                    return False
            elif a != b:
                return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="table cardinality (default 1M)")
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4],
                        help="worker counts to time (default 2 4)")
    parser.add_argument("--batch-size", type=int, default=16384,
                        help="vectorized batch size for every tier")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="hot repetitions per tier (best-of)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="required speedup at the highest worker count "
                             "(default: 2.0, or 1.3 with --quick)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 300k rows, 2 repetitions, "
                             "relaxed speedup bar for shared runners")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 300_000)
        args.repetitions = min(args.repetitions, 2)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 1.3 if args.quick else 2.0

    query = (
        "SELECT qty, COUNT(*), SUM(price), MAX(price) FROM lineitem "
        "WHERE discount < 0.08 GROUP BY qty"
    )
    cores = usable_cores()

    with tempfile.TemporaryDirectory() as directory:
        started = time.perf_counter()
        path = build_dataset(directory, args.rows)
        print(f"dataset: {args.rows} rows binary-column "
              f"({time.perf_counter() - started:.2f}s to materialize)")
        print(f"query:   {query}")
        print(f"cores:   {cores} usable")

        failures: list[str] = []
        serial_seconds, serial = time_query(
            make_engine(path, workers=1, batch_size=args.batch_size),
            query, args.repetitions,
        )
        if serial.tier != "vectorized":
            failures.append(
                f"expected serial tier 'vectorized', ran {serial.tier!r}"
            )

        print(f"\n{'tier':<18} {'seconds':>10} {'speedup':>9} "
              f"{'morsels':>8} {'stolen':>7}")
        print(f"{'vectorized':<18} {serial_seconds:>10.4f} {'1.0x':>9}")
        speedups: dict[int, float] = {}
        for workers in args.workers:
            seconds, result = time_query(
                make_engine(path, workers=workers, batch_size=args.batch_size),
                query, args.repetitions,
            )
            if result.tier != "vectorized-parallel":
                failures.append(
                    f"expected tier 'vectorized-parallel' at {workers} "
                    f"workers, ran {result.tier!r}"
                )
            if not rows_match(sorted(result.rows), sorted(serial.rows)):
                failures.append(
                    f"parallel rows at {workers} workers disagree with the "
                    "serial tier"
                )
            speedups[workers] = serial_seconds / seconds if seconds else float("inf")
            profile = result.profile
            print(f"{f'parallel x{workers}':<18} {seconds:>10.4f} "
                  f"{speedups[workers]:>8.1f}x {profile.morsels_dispatched:>8} "
                  f"{profile.morsels_stolen:>7}")

        top_workers = max(args.workers)
        achieved = speedups[top_workers]
        gated = cores >= top_workers
        if gated and achieved < min_speedup:
            failures.append(
                f"{achieved:.1f}x speedup at {top_workers} workers is below "
                f"the required {min_speedup:.1f}x"
            )
        if args.json_path:
            import json

            record = {
                "name": "bench_parallel_scaling",
                "rows": args.rows,
                "query": query,
                "usable_cores": cores,
                "tiers": {
                    "vectorized": {
                        "seconds": serial_seconds,
                        "rows_per_sec": (
                            args.rows / serial_seconds if serial_seconds else 0.0
                        ),
                    },
                    **{
                        f"vectorized-parallel w{workers}": {
                            "seconds": serial_seconds / speedup if speedup else 0.0,
                            "speedup_over_serial": speedup,
                        }
                        for workers, speedup in speedups.items()
                    },
                },
                "speedup_at_top_workers": achieved,
                "speedup_gate": min_speedup if gated else None,
                "ok": not failures,
                "failures": failures,
            }
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2)
        if failures:
            for failure in failures:
                print(f"\nFAIL: {failure}")
            return 1
        if not gated:
            print(f"\nOK (informational): only {cores} usable core(s) for "
                  f"{top_workers} workers — correctness verified, speedup "
                  f"gate requires >= {top_workers} cores")
            return 0
        print(f"\nOK: morsel-driven tier scales ({achieved:.1f}x at "
              f"{top_workers} workers, identical rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
