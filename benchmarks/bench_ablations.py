"""Ablations of the design choices called out in DESIGN.md / §5-§6:

* engine-per-query code generation versus Volcano-style interpretation of the
  same physical plan,
* adaptive caching on repeated queries over a verbose format,
* CSV structural-index stride (index size versus seek work),
* the fixed-schema specialization of the JSON structural index (Level 0
  dropped when every object has the same field order).
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import proteus_json_adapter, run_hot
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(0.2)


@pytest.fixture(scope="module")
def codegen_ablation(report_sink):
    result = experiments.ablation_codegen(scale=SCALE)
    report_sink.append(
        f"Ablation: {result.name}\n"
        f"  {result.baseline_label:<40} {result.baseline_seconds:10.4f} s\n"
        f"  {result.variant_label:<40} {result.variant_seconds:10.4f} s\n"
        f"  speedup {result.speedup:8.2f}x"
    )
    return result


def test_ablation_codegen(benchmark, codegen_ablation):
    # Removing per-tuple interpretation is the paper's core claim: the
    # generated engine must beat the Volcano interpreter by a wide margin.
    assert codegen_ablation.speedup > 2.0

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_json_adapter(SCALE, {"lineitem": ""})
    spec = templates.selection_query(
        "lineitem", files.tables.orderkey_threshold(0.5), 3, 0.5
    )
    benchmark(run_hot(adapter, spec))


@pytest.fixture(scope="module")
def caching_ablation(report_sink):
    result = experiments.ablation_caching(scale=SCALE)
    report_sink.append(
        f"Ablation: {result.name}\n"
        f"  {result.baseline_label:<40} {result.baseline_seconds:10.4f} s\n"
        f"  {result.variant_label:<40} {result.variant_seconds:10.4f} s\n"
        f"  speedup {result.speedup:8.2f}x"
    )
    return result


def test_ablation_caching(benchmark, caching_ablation):
    # A repeated JSON query served from binary caches avoids re-extraction.
    assert caching_ablation.speedup > 1.5

    adapter = proteus_json_adapter(SCALE, {"lineitem": ""}, enable_caching=True)
    files = bench_data.tpch_files(scale=SCALE)
    spec = templates.projection_query(
        "lineitem", files.tables.orderkey_threshold(0.2), "4agg", 0.2
    )
    benchmark(run_hot(adapter, spec))


def test_ablation_csv_stride(benchmark, report_sink):
    sizes = experiments.ablation_csv_stride(scale=SCALE, strides=(1, 5, 20))
    report_sink.append(
        "Ablation: CSV structural-index stride (index bytes / file bytes)\n"
        + "\n".join(f"  stride {stride:>3}: {ratio * 100:6.2f}%" for stride, ratio in sizes.items())
    )
    assert sizes[1] > sizes[5] > sizes[20]
    benchmark(lambda: experiments.ablation_csv_stride(scale=SCALE, strides=(5,)))


def test_ablation_json_fixed_schema(benchmark, report_sink):
    result = experiments.ablation_json_fixed_schema(scale=SCALE)
    report_sink.append(
        f"Ablation: {result.name}\n"
        f"  {result.baseline_label:<50} {result.baseline_seconds:10.4f} s\n"
        f"  {result.variant_label:<50} {result.variant_seconds:10.4f} s"
    )
    # The fixed-schema code path must not be slower than the flexible one.
    assert result.variant_seconds <= result.baseline_seconds * 1.5
    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_json_adapter(SCALE, {"lineitem": ""})
    spec = templates.selection_query(
        "lineitem", files.tables.orderkey_threshold(0.5), 1, 0.5
    )
    benchmark(run_hot(adapter, spec))
