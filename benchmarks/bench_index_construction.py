"""In-text measurements of §7.1/§7.2: structural-index size and build cost.

Paper shape: the JSON structural index is a fraction of the raw file size
(~21 % for lineitem, ~15 % for orders at SF10) and building it is
significantly faster than loading the data into the comparator systems
(~4x faster than MongoDB's load in the paper).
"""

import pytest

from benchmarks.conftest import scaled
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.storage.structural_index import build_json_index

SCALE = scaled(0.3)


@pytest.fixture(scope="module")
def result(report_sink):
    outcome = experiments.index_construction(scale=SCALE)
    report_sink.append(
        "Structural index construction (lineitem.json)\n"
        f"  file size            {outcome.file_bytes:>12} bytes\n"
        f"  index size           {outcome.index_bytes:>12} bytes"
        f"  ({outcome.index_ratio * 100:.1f}% of the file)\n"
        f"  index build          {outcome.build_seconds:>12.4f} s\n"
        f"  MongoDB-like load    {outcome.mongo_load_seconds:>12.4f} s\n"
        f"  PostgreSQL-like load {outcome.postgres_load_seconds:>12.4f} s"
    )
    return outcome


def test_index_size_and_build_time(benchmark, result):
    # The index does not exceed the file size.  (The paper reports 15-24% for
    # TPC-H SF10 JSON, whose objects are much wider than our laptop-scale
    # synthetic objects; with narrow objects the per-field span entries
    # approach the raw object size.)
    assert result.index_ratio < 1.1
    # The paper reports index construction ~4x faster than MongoDB's load.
    # In this reproduction the comparator loads documents with the C JSON
    # parser while the index builder is pure Python, so only a loose bound is
    # asserted here; the discrepancy is recorded in EXPERIMENTS.md.
    assert result.build_seconds < (result.mongo_load_seconds + result.postgres_load_seconds) * 20

    # Benchmark the raw index build itself.
    files = bench_data.tpch_files(scale=SCALE)
    with open(files.lineitem_json, "rb") as handle:
        data = handle.read()
    benchmark(lambda: build_json_index(data))
