"""Batch-native unnest benchmark: offset-vector flattening vs per-parent
round-trips.

Before the batch-native unnest subsystem, nested collections reached the
batch tiers through per-parent ``scan_unnest`` round-trips (and outer unnest
was punted to the Volcano interpreter entirely).  The subsystem replaces that
with the ``InputPlugin.scan_unnest_batch`` offset-vector API: flattened child
buffers plus per-parent repeat counts, broadcast into each batch with a
single ``np.repeat``.

This benchmark gates the claims on a nested-JSON workload shaped like the
paper's hierarchical datasets (many parents, small nested arrays):

* the batch-native kernel must beat the per-parent ``scan_unnest``
  round-trip path by >= 5x,
* the morsel-parallel tier must produce **bit-identical** output to the
  serial vectorized tier at workers 1, 2 and 8, for inner and outer unnest,
* inner and outer unnest queries must execute on the batch tiers (verified
  via ``ResultSet.tier``) and agree with the Volcano reference.

It also reports (without gating) the batched generic per-parent fallback of
``plugins/base.py`` and the end-to-end tier timings with rows/sec.

Standalone script so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_unnest.py --quick

``--json PATH`` writes a perf-trajectory record (speedups, rows/sec, tier
attribution) consumed by ``benchmarks/run_all.py``.

Exits non-zero if a gate fails or any tier disagrees on results.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time


def build_dataset(directory: str, parents: int) -> str:
    path = f"{directory}/orders.json"
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(parents):
            record = {
                "okey": i,
                "total": round(i * 2.5, 2),
                # Small, skewed nested arrays; every 7th parent is empty
                # (exercises the outer-unnest null row).
                "lines": [
                    {"item": j, "qty": j + 1} for j in range(i % 4)
                ]
                if i % 7
                else [],
            }
            handle.write(json.dumps(record) + "\n")
    return path


def make_engine(path: str, **kwargs):
    from repro import ProteusEngine
    from repro.core import types as t

    schema = t.make_schema(
        {
            "okey": "int",
            "total": "float",
            "lines": [{"item": "int", "qty": "int"}],
        }
    )
    engine = ProteusEngine(enable_caching=False, **kwargs)
    engine.register_json("orders", path, schema=schema)
    return engine


def best_of(repeats: int, fn, *args):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parents", type=int, default=200_000,
                        help="number of parent objects (default 200k)")
    parser.add_argument("--kernel-parents", type=int, default=8_000,
                        help="parents measured on the per-parent round-trip "
                             "path (it is too slow for the full input)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per measurement (best-of)")
    parser.add_argument("--speedup", type=float, default=5.0,
                        help="required batch-native-over-per-parent speedup")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 40k parents, same gates")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.parents = min(args.parents, 40_000)

    import numpy as np

    from repro.plugins.base import InputPlugin

    failures: list[str] = []
    record: dict = {"name": "bench_unnest", "parents": args.parents}
    with tempfile.TemporaryDirectory() as directory:
        path = build_dataset(directory, args.parents)

        # -- kernel-level: offset-vector vs per-parent round-trips ----------
        engine = make_engine(path)
        plugin = engine.plugins["json"]
        dataset = engine.catalog.get("orders")
        element_paths = [("item",), ("qty",)]
        subset = np.arange(min(args.kernel_parents, args.parents), dtype=np.int64)

        native_seconds, native = best_of(
            args.repeats,
            plugin.scan_unnest_batch, dataset, ("lines",), element_paths, subset,
        )

        def per_parent_roundtrips():
            total = 0
            for oid in subset:
                buffers = plugin.scan_unnest(
                    dataset, ("lines",), element_paths, subset[oid : oid + 1]
                )
                total += buffers.count
            return total

        roundtrip_seconds, roundtrip_rows = best_of(1, per_parent_roundtrips)
        fallback_seconds, fallback = best_of(
            args.repeats,
            InputPlugin.scan_unnest_batch,
            plugin, dataset, ("lines",), element_paths, subset,
        )
        if native.count != roundtrip_rows or native.count != fallback.count:
            failures.append(
                f"kernel paths disagree on flattened rows: native {native.count}, "
                f"per-parent {roundtrip_rows}, generic fallback {fallback.count}"
            )
        if native.repeats.tolist() != fallback.repeats.tolist():
            failures.append("native and generic fallback disagree on repeat counts")

        speedup = roundtrip_seconds / native_seconds if native_seconds else float("inf")
        fallback_speedup = (
            fallback_seconds / native_seconds if native_seconds else float("inf")
        )
        native_rate = native.count / native_seconds if native_seconds else 0.0
        print(f"parents={args.parents}  kernel subset={len(subset)}  "
              f"flattened rows={native.count}")
        print(f"  per-parent scan_unnest   {roundtrip_seconds * 1e3:9.1f} ms")
        print(f"  generic batched fallback {fallback_seconds * 1e3:9.1f} ms  "
              f"({fallback_speedup:.1f}x slower than native, not gated)")
        print(f"  batch-native kernel      {native_seconds * 1e3:9.1f} ms  "
              f"({native_rate / 1e6:.2f} M rows/s; {speedup:.1f}x over "
              f"per-parent, gate >= {args.speedup:.0f}x)")
        if speedup < args.speedup:
            failures.append(
                f"batch-native speedup {speedup:.2f}x below the "
                f"{args.speedup:.1f}x gate"
            )
        record["kernel"] = {
            "flattened_rows": int(native.count),
            "native_seconds": native_seconds,
            "per_parent_seconds": roundtrip_seconds,
            "generic_fallback_seconds": fallback_seconds,
            "rows_per_sec": native_rate,
            "speedup_over_per_parent": speedup,
            "speedup_gate": args.speedup,
        }

        # -- end-to-end: inner + outer unnest across tiers ------------------
        queries = {
            "inner": "for { o <- orders, l <- o.lines } yield bag (o.okey, l.item, l.qty)",
            "outer": "for { o <- orders, l <- outer o.lines } yield bag (o.okey, l.item)",
            "inner-agg": "for { o <- orders, l <- o.lines, l.qty > 1 } yield sum (l.qty)",
        }
        configurations = [
            ("volcano", {"enable_codegen": False, "enable_vectorized": False}),
            ("vectorized", {"enable_codegen": False}),
            ("vectorized-parallel w2", {"enable_codegen": False, "parallel_workers": 2}),
            ("vectorized-parallel w8", {"enable_codegen": False, "parallel_workers": 8}),
        ]
        expected_tiers = {
            "volcano": ("volcano",),
            "vectorized": ("vectorized",),
            "vectorized-parallel w2": ("vectorized-parallel",),
            "vectorized-parallel w8": ("vectorized-parallel",),
        }
        record["queries"] = {}
        print("end-to-end (best-of query time):")
        for name, query in queries.items():
            reference_rows = None
            serial_result = None
            entry = {}
            for label, config in configurations:
                engine = make_engine(path, **config)
                engine.query(query)  # warm the structural index
                seconds, result = best_of(args.repeats, engine.query, query)
                rate = len(result) / seconds if seconds else 0.0
                print(f"  {name:10s} {label:22s} {seconds * 1e3:8.1f} ms  "
                      f"[{result.tier}]  {rate / 1e6:6.2f} M rows/s")
                if result.tier not in expected_tiers[label]:
                    failures.append(
                        f"{name}: {label} ran on tier {result.tier!r}"
                    )
                entry[label] = {
                    "seconds": seconds,
                    "tier": result.tier,
                    "rows": len(result),
                    "rows_per_sec": rate,
                }
                if label == "volcano":
                    reference_rows = sorted(result.rows, key=repr)
                elif label == "vectorized":
                    serial_result = result
                    if sorted(result.rows, key=repr) != reference_rows:
                        failures.append(
                            f"{name}: vectorized disagrees with Volcano"
                        )
                else:
                    # Bit-identical to the serial batch tier: same backing
                    # buffers, same row order, at any worker count.
                    for column in result.columns:
                        left = serial_result.column_array(column)
                        right = result.column_array(column)
                        if left.dtype == object:
                            same = list(left) == list(right)
                        elif left.dtype.kind == "f":
                            # NaN encodes missing (outer-unnest null rows);
                            # bit-identical means NaN in the same positions.
                            same = np.array_equal(left, right, equal_nan=True)
                        else:
                            same = np.array_equal(left, right)
                        if not same:
                            failures.append(
                                f"{name}: {label} column {column!r} is not "
                                "bit-identical to the serial tier"
                            )
            volcano_seconds = entry["volcano"]["seconds"]
            vectorized_seconds = entry["vectorized"]["seconds"]
            entry["speedup_over_volcano"] = (
                volcano_seconds / vectorized_seconds if vectorized_seconds else 0.0
            )
            record["queries"][name] = entry

    record["ok"] = not failures
    record["failures"] = failures
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("ok: batch-native unnest holds its gate and every tier agrees")
    return 0


if __name__ == "__main__":
    sys.exit(main())
