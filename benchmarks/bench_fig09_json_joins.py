"""Figure 9: join and unnest queries over JSON data.

Paper shape: Proteus wins every join variant (minimal generated code, light
JSON access path, radix hash join); MongoDB has no join operator — its
map-reduce-style emulation is only reported for the first variant — but it
outperforms the row stores on the Unnest query over denormalized data, where
Proteus again is fastest because its generated code merely walks the arrays.
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import (
    assert_no_mismatches,
    proteus_faster_than,
    proteus_json_adapter,
    record_report,
    run_hot,
)
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(0.2)


@pytest.fixture(scope="module")
def report(report_sink):
    result = experiments.figure9(scale=SCALE)
    record_report(report_sink, result, experiments.JSON_SYSTEMS_CORE)
    return result


def test_fig09_shape(benchmark, report):
    assert_no_mismatches(report)
    proteus_faster_than(report, experiments.POSTGRES, experiments.DBMS_X)
    # MongoDB's join emulation is slower than Proteus' radix join.
    mongo_join = report.seconds(experiments.MONGO, "join_count_50")
    proteus_join = report.seconds(experiments.PROTEUS, "join_count_50")
    assert mongo_join > proteus_join
    # The unnest over denormalized JSON does not leave Proteus behind the row
    # stores by more than its fixed per-query cost (at full scale Proteus wins
    # outright; see EXPERIMENTS.md).
    assert report.seconds(experiments.PROTEUS, "unnest_count_50") < \
        report.seconds(experiments.POSTGRES, "unnest_count_50") + 0.005

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_json_adapter(SCALE, {"orders": "", "lineitem": ""})
    spec = templates.join_query(
        "orders", "lineitem", files.tables.orderkey_threshold(0.5), "2agg", 0.5
    )
    benchmark(run_hot(adapter, spec))
