"""Figure 6: projection-intensive queries over binary relational data.

Paper shape: the column-oriented engines and Proteus dominate the per-tuple
row stores; DBMS C is the fastest for highly selective COUNT queries thanks to
its sort-key data skipping; Proteus remains competitive with the column stores
across the grid (in this reproduction its fixed per-query planning/compilation
cost is the analogue of the paper's ~50 ms compilation time and is visible on
the cheapest queries).
"""

import pytest

from benchmarks.conftest import scaled
from benchmarks.helpers import (
    assert_no_mismatches,
    proteus_binary_adapter,
    proteus_faster_than,
    record_report,
    run_hot,
)
from repro.bench import data as bench_data
from repro.bench import experiments
from repro.workloads import templates

SCALE = scaled(3.0)


@pytest.fixture(scope="module")
def report(report_sink):
    result = experiments.figure6(scale=SCALE)
    record_report(report_sink, result, experiments.BINARY_SYSTEMS)
    return result


def test_fig06_shape(benchmark, report):
    assert_no_mismatches(report)
    proteus_faster_than(report, experiments.POSTGRES, experiments.DBMS_X)
    # DBMS C data skipping: the selective COUNT is not more expensive than the
    # full scan (generous tolerance — both are dominated by fixed per-query
    # work at laptop scale).
    selective = report.seconds(experiments.DBMS_C, "projection_count_10")
    full = report.seconds(experiments.DBMS_C, "projection_count_100")
    assert selective <= full * 2.0

    files = bench_data.tpch_files(scale=SCALE)
    adapter = proteus_binary_adapter(SCALE)
    spec = templates.projection_query(
        "lineitem", files.tables.orderkey_threshold(0.5), "4agg", 0.5
    )
    benchmark(run_hot(adapter, spec))
