"""Figure 14: the 50-query Symantec spam-analysis workload.

Paper shape: Proteus is the fastest approach for the large majority of the 50
queries thanks to its specialized-on-demand code paths and the caches it
builds as a side effect of execution; the RDBMS-with-JSON approach
(PostgreSQL-like) is the slowest overall; the federated DBMS C + MongoDB
approach sits in between and additionally pays loading and middleware costs.
"""

import pytest

from benchmarks.helpers import run_hot
from repro.bench import experiments
from repro.bench.reporting import format_matrix
from repro.bench.systems import ProteusAdapter
from repro.bench import data as bench_data
from repro.workloads import symantec

SYSTEMS = (experiments.PROTEUS, experiments.POSTGRES, experiments.FEDERATED)


@pytest.fixture(scope="module")
def results(symantec_results, report_sink):
    queries = [f"Q{i}" for i in range(1, 51)]
    report_sink.append(
        format_matrix(symantec_results.report, queries, list(SYSTEMS), "{:>10.4f}")
    )
    return symantec_results


def test_fig14_shape(benchmark, results):
    report = results.report
    assert not report.notes, f"cross-system result mismatches: {report.notes}"
    proteus = report.total_seconds(experiments.PROTEUS)
    postgres = report.total_seconds(experiments.POSTGRES)
    federated = report.total_seconds(experiments.FEDERATED)
    # Query-time-only comparison (loading excluded): Proteus is fastest overall.
    assert proteus < postgres
    assert proteus < federated
    # Proteus wins a substantial share of the individual queries outright (at
    # reduced REPRO_BENCH_SCALE its fixed per-query planning cost concedes the
    # cheapest queries, so the aggregate totals above are the primary check).
    wins = 0
    for index in range(1, 51):
        name = f"Q{index}"
        p = report.seconds(experiments.PROTEUS, name)
        others = [report.seconds(s, name) for s in (experiments.POSTGRES, experiments.FEDERATED)]
        if all(o is not None and p is not None and p <= o for o in others):
            wins += 1
    assert wins >= 15, f"Proteus only won {wins}/50 queries"

    # Benchmark one representative heterogeneous (3-way join) query on Proteus.
    files = bench_data.symantec_files(num_json=400, num_csv=1500, num_binary=2000)
    workload = symantec.symantec_workload(files)
    spec = workload[44].spec  # Q45: binary ⋈ CSV ⋈ JSON with three aggregates
    adapter = ProteusAdapter(enable_caching=True)
    adapter.attach_binary_columns("mail_log", files.binary_dir)
    adapter.attach_csv("classification", files.csv_path,
                       schema=symantec.CLASSIFICATION_CSV_SCHEMA)
    adapter.attach_json("spam_mails", files.json_path, schema=symantec.SPAM_JSON_SCHEMA)
    benchmark(run_hot(adapter, spec))
