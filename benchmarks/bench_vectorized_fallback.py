"""Interpretation-overhead benchmark: vectorized batch tier vs Volcano.

Reproduces the Fig. 7/8-style selection experiments for the *fallback* path:
the same physical plan runs through the tuple-at-a-time Volcano interpreter
and through the vectorized batch executor (code generation disabled in both),
quantifying how much of the per-tuple interpretation overhead the batch tier
removes.  The codegen tier is timed as well for context.

Unlike the figure benchmarks this is a standalone script (no pytest-benchmark
session) so CI can smoke it directly::

    PYTHONPATH=src python benchmarks/bench_vectorized_fallback.py --quick

Exits non-zero if the vectorized tier fails to beat Volcano by the required
margin or if any tier disagrees on the result rows.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

import numpy as np


def build_dataset(directory: str, rows: int) -> str:
    """Materialize a binary-column table shaped like the Fig. 8 experiments."""
    from repro.core import types as t
    from repro.storage.binary_format import write_column_table

    rng = np.random.RandomState(7)
    schema = t.make_schema(
        {"id": "int", "qty": "int", "price": "float", "discount": "float"}
    )
    columns = {
        "id": np.arange(rows, dtype=np.int64),
        "qty": rng.randint(0, 100, size=rows).astype(np.int64),
        "price": np.round(rng.uniform(1.0, 1000.0, size=rows), 2),
        "discount": np.round(rng.uniform(0.0, 0.1, size=rows), 4),
    }
    path = f"{directory}/fallback_columns"
    write_column_table(path, columns, schema)
    return path


def make_engine(path: str, *, enable_codegen: bool, enable_vectorized: bool):
    from repro import ProteusEngine

    engine = ProteusEngine(
        enable_caching=False,
        enable_codegen=enable_codegen,
        enable_vectorized=enable_vectorized,
    )
    engine.register_binary_columns("lineitem", path)
    return engine

def time_query(engine, query: str, repetitions: int):
    """Best-of-N hot timing (first run warms plug-in state)."""
    result = engine.query(query)
    best = min(
        engine.query(query).execution_seconds for _ in range(repetitions)
    )
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000,
                        help="table cardinality (default 100k)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="hot repetitions per tier (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 20k rows, 2 repetitions")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required vectorized-over-Volcano speedup")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 20_000)
        args.repetitions = min(args.repetitions, 2)

    query = "SELECT id, price FROM lineitem WHERE qty < 10 AND discount < 0.06"

    with tempfile.TemporaryDirectory() as directory:
        started = time.perf_counter()
        path = build_dataset(directory, args.rows)
        print(f"dataset: {args.rows} rows binary-column "
              f"({time.perf_counter() - started:.2f}s to materialize)")
        print(f"query:   {query}")

        tiers = {
            "volcano": make_engine(path, enable_codegen=False, enable_vectorized=False),
            "vectorized": make_engine(path, enable_codegen=False, enable_vectorized=True),
            "codegen": make_engine(path, enable_codegen=True, enable_vectorized=True),
        }
        timings: dict[str, float] = {}
        rows: dict[str, list] = {}
        for name, engine in tiers.items():
            seconds, result = time_query(engine, query, args.repetitions)
            if result.tier != name:
                print(f"FAIL: expected tier {name!r}, ran {result.tier!r}")
                return 1
            timings[name] = seconds
            rows[name] = sorted(result.rows)

        print(f"\n{'tier':<12} {'seconds':>10} {'vs volcano':>12}")
        for name, seconds in timings.items():
            speedup = timings["volcano"] / seconds if seconds else float("inf")
            print(f"{name:<12} {seconds:>10.4f} {speedup:>11.1f}x")

        speedup = timings["volcano"] / timings["vectorized"]
        failures: list[str] = []
        if rows["vectorized"] != rows["volcano"] or rows["codegen"] != rows["volcano"]:
            failures.append("tiers disagree on result rows")
        if speedup < args.min_speedup:
            failures.append(
                f"vectorized speedup {speedup:.1f}x is below the required "
                f"{args.min_speedup:.1f}x"
            )
        if args.json_path:
            import json

            result_rows = len(rows["vectorized"])
            record = {
                "name": "bench_vectorized_fallback",
                "rows": args.rows,
                "query": query,
                "tiers": {
                    name: {
                        "seconds": seconds,
                        "rows_per_sec": args.rows / seconds if seconds else 0.0,
                    }
                    for name, seconds in timings.items()
                },
                "output_rows": result_rows,
                "speedup_over_volcano": speedup,
                "speedup_gate": args.min_speedup,
                "ok": not failures,
                "failures": failures,
            }
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2)
        if failures:
            for failure in failures:
                print(f"\nFAIL: {failure}")
            return 1
        print(f"\nOK: vectorized tier closes the interpretation-overhead gap "
              f"({speedup:.1f}x over Volcano, identical rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
