"""Run every CI-gated benchmark and record the perf trajectory.

Each gated benchmark is executed as a subprocess (argparse and module state
stay isolated) with ``--quick`` and a per-benchmark ``--json`` record; the
records are aggregated into one ``BENCH_results.json`` document::

    PYTHONPATH=src python benchmarks/run_all.py --quick --json

The aggregate document carries, per benchmark: the gate outcome, wall-clock
seconds, the benchmark's own metrics (speedups, rows/sec, tier attribution)
and, at the top level, the commit / Python / NumPy / platform / CPU-count
provenance that makes the records comparable across CI runs, plus a
metrics-registry snapshot from one in-process smoke query (the shape of the
engine's observability export, recorded alongside the numbers).  The CI workflow uploads the document
as an artifact on every push, so the repository's performance trajectory is
recorded run over run.

Exits non-zero when any gated benchmark fails, after running all of them
(the artifact still records every outcome).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))

#: Every CI-gated benchmark, in workflow order.
GATED_BENCHMARKS = [
    "bench_vectorized_fallback",
    "bench_parallel_scaling",
    "bench_prepared_reuse",
    "bench_orderby_topk",
    "bench_unnest",
    "bench_static_analysis",
    "bench_obs_overhead",
    "bench_resilience_overhead",
    "bench_concurrent_qps",
]


def metrics_snapshot() -> dict | None:
    """In-process engine metrics snapshot stamped into the trajectory record.

    Runs one smoke query against a throwaway engine so the registry carries a
    real tier count and latency histogram — the snapshot documents the
    metrics *shape* CI consumers can rely on, alongside the gate outcomes.
    """
    try:
        import json as json_module
        import tempfile

        from repro import ProteusEngine

        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "smoke.json")
            with open(path, "w", encoding="utf-8") as handle:
                for value in range(16):
                    handle.write(json_module.dumps({"v": value}) + "\n")
            engine = ProteusEngine()
            engine.register_json("smoke", path)
            engine.query("SELECT COUNT(*) AS n FROM smoke WHERE v > 3")
            return engine.metrics.to_dict()
    except Exception:
        return None


def git_commit() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=HERE,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return None


def run_benchmark(name: str, quick: bool) -> dict:
    """Run one benchmark subprocess; returns its trajectory record."""
    script = os.path.join(HERE, f"{name}.py")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    command = [sys.executable, script, "--json", json_path]
    if quick:
        command.append("--quick")
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(HERE, os.pardir, "src"))
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    started = time.perf_counter()
    completed = subprocess.run(
        command, capture_output=True, text=True, env=env
    )
    elapsed = time.perf_counter() - started
    record: dict = {
        "name": name,
        "ok": completed.returncode == 0,
        "exit_code": completed.returncode,
        "wall_seconds": elapsed,
    }
    try:
        with open(json_path, "r", encoding="utf-8") as handle:
            record["metrics"] = json.load(handle)
    except (OSError, ValueError):
        record["metrics"] = None
    finally:
        try:
            os.unlink(json_path)
        except OSError:
            pass
    # Keep the tail of the output: on failure it names the violated gate.
    tail = (completed.stdout + completed.stderr).strip().splitlines()
    record["output_tail"] = tail[-8:]
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="pass --quick through to every benchmark")
    parser.add_argument("--json", dest="json_out", nargs="?",
                        const="BENCH_results.json", default=None,
                        help="write the aggregate trajectory record "
                             "(default path: BENCH_results.json)")
    parser.add_argument("--only", nargs="+", choices=GATED_BENCHMARKS,
                        help="run a subset of the gated benchmarks")
    args = parser.parse_args(argv)

    names = args.only or GATED_BENCHMARKS
    records = []
    for name in names:
        print(f"== {name} {'(--quick)' if args.quick else ''}")
        record = run_benchmark(name, args.quick)
        status = "ok" if record["ok"] else f"FAIL (exit {record['exit_code']})"
        print(f"   {status} in {record['wall_seconds']:.1f}s")
        if not record["ok"]:
            for line in record["output_tail"]:
                print(f"   | {line}")
        records.append(record)

    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:
        numpy_version = None
    document = {
        "schema": "proteus-bench-trajectory/1",
        "commit": git_commit(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "quick": args.quick,
        "ok": all(record["ok"] for record in records),
        "benchmarks": records,
        "metrics_snapshot": metrics_snapshot(),
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"\nwrote {args.json_out}")

    failed = [record["name"] for record in records if not record["ok"]]
    if failed:
        print(f"\nFAIL: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"\nok: all {len(records)} gated benchmarks hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
