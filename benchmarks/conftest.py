"""Shared configuration of the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(§7): it runs the experiment driver from :mod:`repro.bench.experiments`, prints
the paper-style comparison matrix (visible with ``pytest -s`` and summarized in
EXPERIMENTS.md), asserts the comparative *shape* the paper reports, and times
the corresponding Proteus query with pytest-benchmark.

Scales are laptop-sized; set ``REPRO_BENCH_SCALE`` (a float multiplier) to
grow or shrink every dataset, and ``REPRO_BENCH_DATA_DIR`` to control where
generated data is cached.
"""

from __future__ import annotations

import os

import pytest

#: Global scale multiplier applied to every benchmark workload.
SCALE_MULTIPLIER = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: float) -> float:
    return value * SCALE_MULTIPLIER


def scaled_int(value: int) -> int:
    return max(int(value * SCALE_MULTIPLIER), 10)


@pytest.fixture(scope="session")
def report_sink():
    """Collects experiment reports so a session summary can be printed."""
    collected: list[str] = []
    yield collected
    if collected:
        print("\n" + "\n\n".join(collected))


@pytest.fixture(scope="session")
def symantec_results():
    """Run the Symantec workload once and share it between the Figure 14 and
    Table 3 benchmarks (it is by far the most expensive experiment)."""
    from repro.bench import experiments

    return experiments.figure14(
        num_json=scaled_int(1_000),
        num_csv=scaled_int(4_000),
        num_binary=scaled_int(5_000),
    )
