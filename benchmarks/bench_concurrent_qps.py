"""Concurrent serving throughput: sustained QPS at 1 vs 8 clients, one engine.

The serving model (ROADMAP item 1) is many clients sharing ONE engine: the
HTTP layer in ``repro.serve`` runs one handler thread per connection and
every handler calls straight into the shared ``ProteusEngine``.  This
benchmark measures what that buys — aggregate queries/second over a fixed
wall-clock window with 1 client vs 8 concurrent clients, each looping a
warm analytical query through one shared :class:`PreparedQuery` (exactly
the object the per-text prepared cache hands to every HTTP session).

The NumPy kernels of the vectorized tier release the GIL, so on a
multi-core box concurrent clients genuinely overlap; the gate requires the
8-client aggregate to beat the single client by ``--min-scaling`` (2x by
default, matching the subsystem's acceptance bar; ``--quick`` relaxes it
for noisy shared CI runners).  Like the parallel-scaling gate, the bar only
applies when the machine has enough usable cores — a 1-core box can only
demonstrate serving *correctness* under concurrency, not speedup::

    PYTHONPATH=src python benchmarks/bench_concurrent_qps.py --quick

Exit status: non-zero when any client saw a wrong result or (on a gated
machine) the 8-client scaling missed the bar; zero otherwise.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import tempfile
import threading
import time

#: The scaling gate applies only with at least this many usable cores
#: (below that, GIL-released kernels cannot physically overlap enough).
GATE_MIN_CORES = 4


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_dataset(directory: str, rows: int) -> str:
    """Materialize a binary-column table shaped like a TPC-H lineitem slice."""
    import numpy as np

    from repro.core import types as t
    from repro.storage.binary_format import write_column_table

    rng = np.random.RandomState(11)
    schema = t.make_schema(
        {"id": "int", "qty": "int", "price": "float", "discount": "float"}
    )
    columns = {
        "id": np.arange(rows, dtype=np.int64),
        "qty": rng.randint(0, 100, size=rows).astype(np.int64),
        "price": np.round(rng.uniform(1.0, 1000.0, size=rows), 2),
        "discount": np.round(rng.uniform(0.0, 0.1, size=rows), 4),
    }
    path = f"{directory}/qps_columns"
    write_column_table(path, columns, schema)
    return path


def make_engine(path: str, *, batch_size: int):
    from repro import ProteusEngine

    # Serial vectorized execution per query: concurrency in this benchmark
    # comes from the *clients*, exactly like the HTTP serving layer — each
    # handler thread runs its query serially against the shared engine.
    engine = ProteusEngine(
        enable_caching=False,
        enable_codegen=False,
        parallel_workers=1,
        vectorized_batch_size=batch_size,
    )
    engine.register_binary_columns("lineitem", path)
    return engine


def rows_match(left, right) -> bool:
    if len(left) != len(right):
        return False
    for row_a, row_b in zip(left, right):
        for a, b in zip(row_a, row_b):
            if isinstance(a, float) and isinstance(b, float):
                if not (math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
                        or (math.isnan(a) and math.isnan(b))):
                    return False
            elif a != b:
                return False
    return True


def measure(prepared, reference_rows, clients: int, seconds: float):
    """Aggregate QPS of ``clients`` barrier-aligned threads looping the
    shared prepared query for a fixed wall-clock window."""
    barrier = threading.Barrier(clients + 1)
    counts = [0] * clients
    elapsed = [0.0] * clients
    failures: list[str] = []
    failures_lock = threading.Lock()

    def client(index: int) -> None:
        barrier.wait()
        deadline = time.monotonic() + seconds
        started = time.monotonic()
        completed = 0
        while time.monotonic() < deadline:
            result = prepared.execute()
            completed += 1
            if completed == 1 and not rows_match(result.rows, reference_rows):
                with failures_lock:
                    failures.append(f"client {index} saw wrong rows")
        counts[index] = completed
        elapsed[index] = time.monotonic() - started

    threads = [
        threading.Thread(target=client, args=(i,), name=f"qps-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    for thread in threads:
        thread.join()
    window = max(elapsed) if elapsed else seconds
    total = sum(counts)
    return (total / window if window else 0.0), total, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=400_000,
                        help="table cardinality (default 400k)")
    parser.add_argument("--clients", type=int, nargs="+", default=[1, 8],
                        help="concurrent client counts (default 1 8)")
    parser.add_argument("--seconds", type=float, default=2.0,
                        help="measured window per client count (default 2s)")
    parser.add_argument("--batch-size", type=int, default=65536,
                        help="vectorized batch size (large batches keep the "
                             "per-query Python overhead small)")
    parser.add_argument("--min-scaling", type=float, default=None,
                        help="required aggregate-QPS ratio at the highest "
                             "client count (default: 2.0, or 1.5 with "
                             "--quick for noisy shared runners)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 150k rows, 1s windows, relaxed "
                             "scaling bar")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 150_000)
        args.seconds = min(args.seconds, 1.0)
    min_scaling = args.min_scaling
    if min_scaling is None:
        min_scaling = 1.5 if args.quick else 2.0

    query = ("SELECT COUNT(*), SUM(price), MAX(price) FROM lineitem "
             "WHERE discount < 0.08")
    cores = usable_cores()

    with tempfile.TemporaryDirectory() as directory:
        started = time.perf_counter()
        path = build_dataset(directory, args.rows)
        print(f"dataset: {args.rows} rows binary-column "
              f"({time.perf_counter() - started:.2f}s to materialize)")
        print(f"query:   {query}")
        print(f"cores:   {cores} usable")

        engine = make_engine(path, batch_size=args.batch_size)
        # One shared PreparedQuery for every client — the same sharing the
        # HTTP layer's per-text prepared cache provides.
        prepared = engine.prepare(query)
        reference = prepared.execute()
        if reference.tier != "vectorized":
            print(f"\nFAIL: expected tier 'vectorized', ran {reference.tier!r}")
            return 1

        failures: list[str] = []
        print(f"\n{'clients':>8} {'queries':>9} {'agg qps':>10} {'scaling':>9}")
        qps_by_clients: dict[int, float] = {}
        queries_by_clients: dict[int, int] = {}
        for clients in args.clients:
            qps, total, client_failures = measure(
                prepared, reference.rows, clients, args.seconds
            )
            failures.extend(client_failures)
            qps_by_clients[clients] = qps
            queries_by_clients[clients] = total
            baseline = qps_by_clients[min(qps_by_clients)]
            scaling = qps / baseline if baseline else float("inf")
            print(f"{clients:>8} {total:>9} {qps:>10.1f} {scaling:>8.2f}x")

        top_clients = max(args.clients)
        base_clients = min(args.clients)
        achieved = (
            qps_by_clients[top_clients] / qps_by_clients[base_clients]
            if qps_by_clients[base_clients]
            else float("inf")
        )
        gated = cores >= GATE_MIN_CORES
        if gated and achieved < min_scaling:
            failures.append(
                f"{achieved:.2f}x aggregate QPS at {top_clients} clients is "
                f"below the required {min_scaling:.1f}x"
            )
        if args.json_path:
            import json

            record = {
                "name": "bench_concurrent_qps",
                "rows": args.rows,
                "query": query,
                "usable_cores": cores,
                "window_seconds": args.seconds,
                "clients": {
                    str(clients): {
                        "aggregate_qps": qps_by_clients[clients],
                        "queries_completed": queries_by_clients[clients],
                    }
                    for clients in args.clients
                },
                "scaling_at_top_clients": achieved,
                "scaling_gate": min_scaling if gated else None,
                "ok": not failures,
                "failures": failures,
            }
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2)
        if failures:
            for failure in failures:
                print(f"\nFAIL: {failure}")
            return 1
        if not gated:
            print(f"\nOK (informational): only {cores} usable core(s) — "
                  f"correctness under {top_clients} concurrent clients "
                  f"verified; the {min_scaling:.1f}x scaling gate requires "
                  f">= {GATE_MIN_CORES} cores")
            return 0
        print(f"\nOK: one shared engine sustains {achieved:.2f}x aggregate "
              f"QPS at {top_clients} clients (gate {min_scaling:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
