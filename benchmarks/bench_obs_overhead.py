"""Observability overhead benchmark: tracing must be pay-for-what-you-use.

The tracing layer (:mod:`repro.obs`) promises two things:

* **disabled** (the default) it costs ~nothing — every instrumentation site
  reduces to one ``is None`` / attribute check, and the batch pipelines run
  the exact same unwrapped stage objects as a pre-observability engine,
* **enabled** it stays under a small bounded overhead — operator spans are
  accumulators fed once per *batch* (never per row), and the Volcano wrapper
  flushes one locally-accumulated total per exhausted iterator.

This benchmark times the same prepared query on three engines — tracing on,
tracing off (metrics recording still on, the default), and fully bare
(``enable_metrics=False``) — and gates the ratios:

* traced / bare       < 1.05   (tracing enabled: < 5% overhead)
* untraced / bare     < 1.03   (tracing disabled: noise-level overhead)

The workload runs the vectorized tier with the default 4096-row batches over
enough rows to produce hundreds of batches, so the per-batch wrappers are
exercised as hard as a realistic scan does.  Ratios are computed over
best-of timings to shed scheduler noise.

Standalone script (like ``bench_static_analysis.py``) so CI can smoke it::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick

Exits non-zero if an overhead gate fails.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

import numpy as np

QUERY = (
    "SELECT SUM(v) AS s, MIN(w) AS mn, MAX(v) AS mx, AVG(w) AS av, "
    "COUNT(*) AS n FROM events WHERE v > 250000.0 AND w < 750000.0"
)


def build_dataset(directory: str, rows: int) -> str:
    from repro.core import types as t
    from repro.storage.binary_format import write_column_table

    rng = np.random.RandomState(23)
    schema = t.make_schema({"id": "int", "v": "float", "w": "float"})
    columns = {
        "id": np.arange(rows, dtype=np.int64),
        "v": rng.uniform(0.0, 1_000_000.0, size=rows),
        "w": rng.uniform(0.0, 1_000_000.0, size=rows),
    }
    path = f"{directory}/obs_columns"
    write_column_table(path, columns, schema)
    return path


def make_engine(path: str, **kwargs):
    from repro import ProteusEngine

    # The vectorized tier exercises the per-batch stage wrappers; caching is
    # off so every execution re-scans (the overhead we are measuring).
    engine = ProteusEngine(
        enable_caching=False, enable_codegen=False, enable_parallel=False,
        **kwargs,
    )
    engine.register_binary_columns("events", path)
    return engine


def _median(values: list) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def paired_rounds(repeats: int, functions: dict) -> dict:
    """Per-configuration single-execution timings, taken in paired rounds.

    Configurations are timed round-robin within every round, so slow drift
    (cache warmth, thermal throttling, a noisy neighbour) hits all of them
    alike.  Overhead is then judged on the *median of per-round ratios*
    against the baseline — each ratio compares executions that ran
    milliseconds apart under the same machine conditions, which is far more
    robust than comparing minima taken minutes apart.
    """
    samples: dict = {name: [] for name in functions}
    for _ in range(repeats):
        for name, fn in functions.items():
            started = time.perf_counter()
            fn()
            samples[name].append(time.perf_counter() - started)
    return samples


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="table cardinality (default 1M)")
    parser.add_argument("--repeats", type=int, default=40,
                        help="interleaved timing rounds (best single "
                             "execution per configuration)")
    parser.add_argument("--traced-gate", type=float, default=1.05,
                        help="max traced/bare ratio (default 1.05)")
    parser.add_argument("--disabled-gate", type=float, default=1.03,
                        help="max untraced/bare ratio (default 1.03)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 400k rows, same gates")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write a perf-trajectory JSON record to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.rows = min(args.rows, 400_000)

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as directory:
        path = build_dataset(directory, args.rows)

        bare = make_engine(path, enable_metrics=False)
        untraced = make_engine(path)
        traced = make_engine(path, enable_tracing=True)

        configurations = [
            ("bare", bare),
            ("untraced", untraced),
            ("traced", traced),
        ]
        prepared = {}
        for name, engine in configurations:
            statement = engine.prepare(QUERY)
            statement.execute()  # warm-up: structural index, file mmap
            prepared[name] = statement

        samples = paired_rounds(
            args.repeats,
            {name: prepared[name].execute for name, _ in configurations},
        )
        expected = prepared["bare"].execute().rows
        for name in ("untraced", "traced"):
            if prepared[name].execute().rows != expected:
                failures.append(f"{name} engine changed the query result")

        trace = traced.tracer.last()
        if trace is None or not trace.operators:
            failures.append("traced engine recorded no operator spans")

    traced_ratio = _median(
        [t / b for t, b in zip(samples["traced"], samples["bare"])]
    )
    disabled_ratio = _median(
        [u / b for u, b in zip(samples["untraced"], samples["bare"])]
    )

    batches = args.rows // 4096 + 1
    print(f"observability overhead over {args.rows:,} rows "
          f"(~{batches} batches/execution, median ratio over "
          f"{args.repeats} paired rounds)")
    for name, _ in [("bare", None), ("untraced", None), ("traced", None)]:
        print(f"  {name:<9}{min(samples[name]) * 1e3:9.1f} ms (best)")
    print(f"  traced / bare    {traced_ratio:.3f}x  (gate < {args.traced_gate:.2f}x)")
    print(f"  untraced / bare  {disabled_ratio:.3f}x  (gate < {args.disabled_gate:.2f}x)")

    if traced_ratio >= args.traced_gate:
        failures.append(
            f"tracing-enabled overhead {traced_ratio:.3f}x exceeds the "
            f"{args.traced_gate:.2f}x gate"
        )
    if disabled_ratio >= args.disabled_gate:
        failures.append(
            f"tracing-disabled overhead {disabled_ratio:.3f}x exceeds the "
            f"{args.disabled_gate:.2f}x gate"
        )

    if args.json_path:
        import json

        record = {
            "name": "bench_obs_overhead",
            "rows": args.rows,
            "bare_seconds": min(samples["bare"]),
            "untraced_seconds": min(samples["untraced"]),
            "traced_seconds": min(samples["traced"]),
            "traced_ratio": traced_ratio,
            "disabled_ratio": disabled_ratio,
            "traced_gate": args.traced_gate,
            "disabled_gate": args.disabled_gate,
            "ok": not failures,
            "failures": failures,
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("ok: tracing stays under its overhead gates")
    return 0


if __name__ == "__main__":
    sys.exit(main())
